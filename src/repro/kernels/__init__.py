"""The four modeled GPU implementations (paper Table 3).

==================  ======  =========  ============================
Implementation      Cores   Precision  Scenario
==================  ======  =========  ============================
FaSTED              Tensor  FP16-32    brute force
TED-Join-Brute      Tensor  FP64       brute force
TED-Join-Index      Tensor  FP64       index-supported
GDS-Join            CUDA    FP32       index-supported
MiSTIC              CUDA    FP32       index-supported
==================  ======  =========  ============================
"""

from repro.kernels.fasted import FastedConfig, FastedKernel, FastedOptimizations
from repro.kernels.gdsjoin import GdsJoinKernel
from repro.kernels.mistic import MisticKernel
from repro.kernels.tedjoin import TedJoinKernel

__all__ = [
    "FastedConfig",
    "FastedKernel",
    "FastedOptimizations",
    "GdsJoinKernel",
    "MisticKernel",
    "TedJoinKernel",
]
