"""TED-Join: FP64 tensor-core Euclidean distances (Gallet & Gowanlock 2022).

The only prior tensor-core Euclidean-distance algorithm; FaSTED's direct
competitor (paper Sections 2.5, 4.4).  It uses the WMMA API's 8x8x4 FP64
fragments and stages whole points in shared memory, which produces the
three weaknesses the paper measures:

* **Shared-memory capacity** scales with ``d`` (whole points are staged),
  so the kernel OOMs beyond ``d = 384`` even after the paper's L1-carveout
  modification (and beyond ``d = 128`` unmodified).
* **WMMA's rigid access patterns** cause massive bank conflicts (92.3% at
  d=128, 75% at d=256 -- paper Table 6), unfixable without the PTX-level
  control FaSTED uses.
* **Throughput declines with d** as the shrinking shared-memory tile kills
  data reuse: 6.8% of FP64 peak at d=64, decreasing thereafter.

Functional path: exact FP64 arithmetic (brute force, or grid-index
candidates for the Index variant).  Timing path: the efficiency curve
``eff(d) = EFF64 * (64 / d)^DECAY`` anchored at the paper's measured 6.8%
with the structural occupancy/OOM logic above.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import (
    SourceWorkView,
    StreamStats,
    TilePlan,
    WorkerPlan,
    auto_batched_from_stats,
    batch_params_from_stats,
    batched_candidate_self_join,
    candidate_join,
    candidate_self_join,
    norm_expansion_sq_dists,
    process_candidate_self_join,
    rect_join,
    streaming_join,
    streaming_self_join,
    symmetric_self_join,
)
from repro.core.results import JoinResult, NeighborResult, PairAccumulator
from repro.data.source import DatasetSource, as_source
from repro.gpusim.occupancy import BlockResources, blocks_per_sm
from repro.gpusim.pipeline import PipelineConfig
from repro.gpusim.spec import DEFAULT_SPEC, GpuSpec
from repro.gpusim.timing import KernelCost, ResourceDemand
from repro.index.grid import GridIndex
from repro.kernels.base import (
    LAUNCH_OVERHEAD_S,
    ResponseTime,
    h2d_seconds,
    result_transfer_seconds,
)
from repro.kernels.cudacore import ShortCircuitProfile, grid_build_seconds

#: Points (query tile + candidate tile) staged in shared memory, FP64.
TED_SMEM_POINTS = 46

#: Original TED-Join static shared-memory budget (no L1 carveout), bytes.
TED_UNMODIFIED_SMEM = 48 * 1024

#: Fraction of FP64 tensor-core peak at d=64 (paper Section 4.4: 6.8%).
TED_EFF64 = 0.068

#: Efficiency decay exponent with dimensionality (fitted to the Figure 9
#: decline of TED-Join-Brute).
TED_DECAY = 0.45

#: WMMA bank-conflict degree by dimensionality (paper Table 6: 92.3% at
#: d=128 and 75.0% at d=256 correspond to 13-way and 4-way replays).
def wmma_conflict_degree(d: int) -> int:
    return 13 if d <= 128 else 4


@dataclass
class TedJoinResult:
    """Functional result plus statistics for the timing model."""

    result: NeighborResult
    total_candidates: int
    profile: ShortCircuitProfile | None


class TedJoinKernel:
    """TED-Join (FP64 WMMA) on the simulated GPU.

    Parameters
    ----------
    spec:
        GPU model.
    variant:
        ``"brute"`` (Scenario 1) or ``"index"`` (Scenario 2, grid-backed).
    modified:
        Apply the paper's L1-carveout modification raising the
        shared-memory budget from 48 KB to the configurable maximum
        (extends support from d<=128 to d<=384).
    """

    def __init__(
        self,
        spec: GpuSpec = DEFAULT_SPEC,
        *,
        variant: str = "brute",
        modified: bool = True,
    ) -> None:
        if variant not in {"brute", "index"}:
            raise ValueError("variant must be 'brute' or 'index'")
        self.spec = spec
        self.variant = variant
        self.modified = modified

    # ------------------------------------------------------------------
    # Capacity model
    # ------------------------------------------------------------------

    def smem_bytes(self, d: int) -> int:
        """Shared memory per block: whole staged points, FP64."""
        return TED_SMEM_POINTS * d * 8

    def supports(self, d: int) -> bool:
        """False when the configuration OOMs (paper's failure mode)."""
        limit = self.spec.smem_max_block_bytes if self.modified else TED_UNMODIFIED_SMEM
        return self.smem_bytes(d) <= limit

    def occupancy(self, d: int) -> int:
        """Blocks per SM at this dimensionality (0 = OOM)."""
        if not self.supports(d):
            return 0
        res = BlockResources(
            threads_per_block=256,
            registers_per_thread=64,
            smem_bytes_per_block=self.smem_bytes(d),
        )
        return blocks_per_sm(self.spec, res)

    # ------------------------------------------------------------------
    # Functional path (exact FP64)
    # ------------------------------------------------------------------

    def auto_row_block(
        self, n: int, dim: int, workers: "int | str | WorkerPlan | None" = 0
    ) -> int:
        """Functional tile edge resolved when ``row_block=None`` (brute).

        The worker plan's cache-fit edge at FP64 itemsizes, quantized to
        the 8-point WMMA granule -- the single source of truth shared by
        :meth:`self_join`, :meth:`join`, and the ``workers`` benchmark
        entry.
        """
        return WorkerPlan.resolve(workers).tile_rows(
            n, dim, d2_itemsize=8, work_itemsize=8, quantum=8
        )

    def self_join_stream(
        self,
        source: DatasetSource,
        eps: float,
        *,
        store_distances: bool = True,
        row_block: int = 1024,
        memory_budget_bytes: int | None = None,
        prefetch: bool = True,
        acc: PairAccumulator | None = None,
        workers: "int | str | WorkerPlan | None" = 0,
    ) -> tuple[TedJoinResult, StreamStats]:
        """Out-of-core FP64 brute self-join (bit-identical to resident).

        Brute variant only; the index variant's out-of-core mode is
        :meth:`self_join_source`, which builds its grid with the streamed
        ``GridIndex.from_source`` and gathers candidate rows from the
        source.  Per-block state here is the contiguous FP64 block plus
        its row norms (row-local, hence value-identical to the resident
        precompute); peak residency is bounded by the
        :class:`~repro.core.engine.TilePlan`.  ``acc`` admits a
        disk-spilling accumulator; ``workers`` overlaps tile GEMMs with
        the block prefetch (in-order commit, bit-identical).
        """
        if self.variant != "brute":
            raise ValueError(
                "brute-variant streaming only; use self_join_source for the "
                "index variant's out-of-core mode"
            )
        source = as_source(source)
        if not self.supports(source.dim):
            raise MemoryError(
                f"TED-Join ({'modified' if self.modified else 'original'}) "
                f"exceeds shared memory at d={source.dim}"
            )
        eps2 = float(eps) ** 2

        def prepare(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return block, (block * block).sum(axis=1)

        def block_sq_dists(row_state, col_state) -> np.ndarray:
            dr, sr = row_state
            dc, sc = col_state
            return norm_expansion_sq_dists(sr, sc, dr @ dc.T)

        out, stats = streaming_self_join(
            source,
            eps2,
            prepare,
            block_sq_dists,
            row_block=row_block,
            memory_budget_bytes=memory_budget_bytes,
            store_distances=store_distances,
            prefetch=prefetch,
            acc=acc,
            workers=workers,
        )
        n = source.n
        result = TedJoinResult(
            result=out.finalize(n, float(eps)),
            total_candidates=n * n,
            profile=None,
        )
        return result, stats

    def self_join(
        self,
        data: np.ndarray,
        eps: float,
        *,
        store_distances: bool = True,
        workers: "int | str | WorkerPlan | None" = 0,
        batched: bool | None = None,
        batch_params: dict | None = None,
        row_block: int | None = None,
        plan: TilePlan | None = None,
    ) -> TedJoinResult:
        """FP64-exact self-join (norm-expansion form, as TED-Join computes).

        Both variants run on the shared join engine: the brute variant on
        the symmetric tiled executor (``c0 >= r0`` tiles mirrored -- FP64
        dot products are position-independent in BLAS, so this is
        bit-identical to evaluating the full matrix at half the GEMM work),
        the index variant on the candidate-group executor.  ``workers``
        parallelizes both variants: thread-pool tile dispatch for the
        brute variant, and the fork-based process pool
        (:func:`repro.core.engine.process_candidate_self_join`) for the
        index variant's candidate groups, whose per-group work is too
        fine-grained for threads -- results are bit-identical to serial
        either way.  ``batched`` routes the index variant through the
        padded batch-GEMM executor
        (:func:`repro.core.engine.batched_candidate_self_join`) -- same
        pair set, faster at small eps, with knobs derived from the grid's
        measured group moments
        (:func:`repro.core.engine.batch_params_from_stats`; override any
        of them via ``batch_params``); ``batched=None`` (the default)
        resolves from those same moments
        (:func:`repro.core.engine.auto_batched_from_stats`), and the
        brute variant ignores it.  ``row_block`` (brute) defaults to
        the worker plan's cache-fit edge; ``plan`` overrides the brute
        tile geometry outright (e.g. the device schedule from
        :meth:`tile_plan`).  The modeled hardware cost is unchanged:
        TED-Join itself evaluates all ``n^2`` candidates.

        Raises :class:`MemoryError` when the dimensionality exceeds the
        shared-memory capacity, mirroring the hardware failure.
        """
        data = np.ascontiguousarray(data, dtype=np.float64)
        n, d = data.shape
        if not self.supports(d):
            raise MemoryError(
                f"TED-Join ({'modified' if self.modified else 'original'}) "
                f"exceeds shared memory at d={d}"
            )
        eps2 = float(eps) ** 2
        wp = WorkerPlan.resolve(workers)
        s = (data * data).sum(axis=1)
        if self.variant == "brute":
            if plan is None and row_block is None:
                row_block = self.auto_row_block(n, d, wp)

            def tile(r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
                return norm_expansion_sq_dists(
                    s[r0:r1], s[c0:c1], data[r0:r1] @ data[c0:c1].T
                )

            acc = symmetric_self_join(
                n,
                eps2,
                tile,
                plan=plan,
                row_block=row_block if row_block is not None else 1024,
                store_distances=store_distances,
                workers=wp,
            )
            return TedJoinResult(
                result=acc.finalize(n, float(eps)),
                total_candidates=n * n,
                profile=None,
            )
        # Index variant: grid candidates, FP64 distances, 8x8 tile padding.
        index = GridIndex(data, eps)
        if batched is None:
            batched = auto_batched_from_stats(index.stats())
        total_candidates = 0

        def on_group(members: np.ndarray, candidates: np.ndarray) -> None:
            # WMMA quantization: work is dispatched in 8x8 point tiles.
            nonlocal total_candidates
            padded = (-(-members.size // 8) * 8) * (-(-candidates.size // 8) * 8)
            total_candidates += padded

        params = (
            batch_params_from_stats(index.stats(), **(batch_params or {}))
            if batched
            else None
        )
        if wp.parallel:
            acc = process_candidate_self_join(
                index.iter_cells(order="size" if batched else "lex"),
                data,
                s,
                eps2,
                store_distances=store_distances,
                on_group=on_group,
                workers=wp,
                batched=batched,
                batch_params=params,
            )
        elif batched:
            acc = batched_candidate_self_join(
                index.iter_cells(order="size"),
                data,
                s,
                eps2,
                store_distances=store_distances,
                on_group=on_group,
                **params,
            )
        else:

            def dist(members: np.ndarray, candidates: np.ndarray) -> np.ndarray:
                return norm_expansion_sq_dists(
                    s[members], s[candidates], data[members] @ data[candidates].T
                )

            acc = candidate_self_join(
                index.iter_cells(),
                dist,
                eps2,
                store_distances=store_distances,
                on_group=on_group,
            )
        return TedJoinResult(
            result=acc.finalize(n, float(eps)),
            total_candidates=total_candidates,
            profile=None,
        )

    # ------------------------------------------------------------------
    # Two-source joins and source-backed index joins
    # ------------------------------------------------------------------

    def join(
        self,
        a: np.ndarray,
        b: np.ndarray,
        eps: float,
        *,
        store_distances: bool = True,
        row_block: int | None = None,
        col_block: int | None = None,
        workers: "int | str | WorkerPlan | None" = 0,
    ) -> JoinResult:
        """Two-source FP64 join: pairs ``(i in A, j in B)`` within ``eps``.

        Brute variant: rectangular tiled executor
        (:func:`repro.core.engine.rect_join`) -- every A-row x B-col tile,
        one pair direction, no diagonal handling.  Index variant: grid
        built over **B**, A's points dropped into it
        (``GridIndex.iter_join_groups``), candidates evaluated with the
        two-source candidate executor (no self-pair drop -- equal indices
        address different points).  ``workers`` parallelizes both: thread
        tiles for brute, the process-pool candidate executor for index
        (bit-identical to serial either way).  Functional path only; the
        timing models remain self-join-scoped.
        """
        a = np.ascontiguousarray(a, dtype=np.float64)
        b = np.ascontiguousarray(b, dtype=np.float64)
        if a.shape[1] != b.shape[1]:
            raise ValueError("A and B dimensionalities must match")
        d = a.shape[1]
        if not self.supports(d):
            raise MemoryError(
                f"TED-Join ({'modified' if self.modified else 'original'}) "
                f"exceeds shared memory at d={d}"
            )
        eps2 = float(eps) ** 2
        wp = WorkerPlan.resolve(workers)
        sa = (a * a).sum(axis=1)
        sb = (b * b).sum(axis=1)
        if self.variant == "brute":
            if row_block is None:
                row_block = self.auto_row_block(
                    max(a.shape[0], b.shape[0]), d, wp
                )

            def tile(r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
                return norm_expansion_sq_dists(
                    sa[r0:r1], sb[c0:c1], a[r0:r1] @ b[c0:c1].T
                )

            acc = rect_join(
                a.shape[0],
                b.shape[0],
                eps2,
                tile,
                row_block=row_block,
                col_block=col_block,
                store_distances=store_distances,
                workers=wp,
            )
            return acc.finalize_join(a.shape[0], b.shape[0], float(eps))
        index = GridIndex(b, eps)
        if wp.parallel:
            acc = process_candidate_self_join(
                index.iter_join_groups(a),
                a,
                sa,
                eps2,
                store_distances=store_distances,
                workers=wp,
                drop_self=False,
                work_right=b,
                sq_norms_right=sb,
            )
            return acc.finalize_join(a.shape[0], b.shape[0], float(eps))

        def dist(members: np.ndarray, candidates: np.ndarray) -> np.ndarray:
            return norm_expansion_sq_dists(
                sa[members], sb[candidates], a[members] @ b[candidates].T
            )

        acc = candidate_join(
            index.iter_join_groups(a),
            dist,
            eps2,
            store_distances=store_distances,
        )
        return acc.finalize_join(a.shape[0], b.shape[0], float(eps))

    def join_stream(
        self,
        source_a: DatasetSource,
        source_b: DatasetSource,
        eps: float,
        *,
        store_distances: bool = True,
        row_block: int = 1024,
        col_block: int | None = None,
        memory_budget_bytes: int | None = None,
        prefetch: bool = True,
        acc: PairAccumulator | None = None,
        workers: "int | str | WorkerPlan | None" = 0,
    ) -> tuple[JoinResult, StreamStats]:
        """Out-of-core two-source FP64 join (brute variant; bit-identical
        to :meth:`join` at the same tile plan).

        A's row blocks pin stripe by stripe while B's column blocks stream
        through (:func:`repro.core.engine.streaming_join`); ``acc`` admits
        a disk-spilling accumulator for outputs larger than RAM, and
        ``workers`` overlaps tile GEMMs with the cross-source prefetch
        (in-order commit, bit-identical).
        """
        if self.variant != "brute":
            raise ValueError(
                "brute-variant streaming only; the index variant joins "
                "sources via GridIndex.from_source (see self_join_source)"
            )
        source_a, source_b = as_source(source_a), as_source(source_b)
        if not self.supports(source_a.dim):
            raise MemoryError(
                f"TED-Join ({'modified' if self.modified else 'original'}) "
                f"exceeds shared memory at d={source_a.dim}"
            )
        eps2 = float(eps) ** 2

        def prepare(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            return block, (block * block).sum(axis=1)

        def block_sq_dists(row_state, col_state) -> np.ndarray:
            dr, sr = row_state
            dc, sc = col_state
            return norm_expansion_sq_dists(sr, sc, dr @ dc.T)

        out, stats = streaming_join(
            source_a,
            source_b,
            eps2,
            prepare,
            block_sq_dists,
            row_block=row_block,
            col_block=col_block,
            memory_budget_bytes=memory_budget_bytes,
            store_distances=store_distances,
            prefetch=prefetch,
            acc=acc,
            workers=workers,
        )
        return out.finalize_join(source_a.n, source_b.n, float(eps)), stats

    def self_join_source(
        self,
        source: DatasetSource,
        eps: float,
        *,
        store_distances: bool = True,
        row_block: int = 65536,
        memory_budget_bytes: int | None = None,
        batched: bool | None = None,
        batch_params: dict | None = None,
    ) -> tuple[TedJoinResult, StreamStats]:
        """Index-variant self-join against a source (out-of-core grid build).

        The grid is built with ``GridIndex.from_source`` -- streamed
        cell-key encoding plus an external counting sort, never holding
        the ``(n, d)`` dataset -- and the candidate executor gathers
        member/candidate rows on demand with ``source.take``.  Per-row
        norms and per-group GEMM shapes are unchanged, so the result is
        bit-identical to :meth:`self_join` on the materialized data
        (pinned by tests/test_two_source.py).  ``batched=True`` (or
        ``None`` resolving true from the streamed grid's group moments)
        fuses the groups into padded batch GEMMs with the ``take()``
        gathers batched per flush
        (:class:`~repro.core.engine.SourceWorkView`; pair-set contract,
        knobs from ``GridIndex.stats()`` overridable via
        ``batch_params``).
        """
        if self.variant != "index":
            raise ValueError(
                "self_join_source is the index variant's source mode; the "
                "brute variant streams via self_join_stream"
            )
        source = as_source(source)
        n, d = int(source.n), int(source.dim)
        if not self.supports(d):
            raise MemoryError(
                f"TED-Join ({'modified' if self.modified else 'original'}) "
                f"exceeds shared memory at d={d}"
            )
        if memory_budget_bytes is not None:
            row_block = TilePlan.from_budget(n, d, int(memory_budget_bytes)).row_block
        stats = StreamStats(plan=TilePlan(n=n, row_block=row_block))
        index = GridIndex.from_source(
            source, eps, row_block=row_block, stats=stats
        )
        if batched is None:
            batched = auto_batched_from_stats(index.stats())
        eps2 = float(eps) ** 2
        total_candidates = 0

        def on_group(members: np.ndarray, candidates: np.ndarray) -> None:
            nonlocal total_candidates
            padded = (-(-members.size // 8) * 8) * (-(-candidates.size // 8) * 8)
            total_candidates += padded

        if batched:
            params = batch_params_from_stats(
                index.stats(), **(batch_params or {})
            )
            view = SourceWorkView(source, np.float64, stats=stats)
            try:
                acc = batched_candidate_self_join(
                    index.iter_cells(order="size"),
                    view.work,
                    view.sq_norms,
                    eps2,
                    store_distances=store_distances,
                    on_group=on_group,
                    **params,
                )
            finally:
                view.close()
        else:

            def dist(members: np.ndarray, candidates: np.ndarray) -> np.ndarray:
                dm = source.take(members)
                dc = source.take(candidates)
                stats._acquire(dm.nbytes + dc.nbytes)
                try:
                    return norm_expansion_sq_dists(
                        (dm * dm).sum(axis=1), (dc * dc).sum(axis=1), dm @ dc.T
                    )
                finally:
                    stats._release(dm.nbytes + dc.nbytes)

            acc = candidate_self_join(
                index.iter_cells(),
                dist,
                eps2,
                store_distances=store_distances,
                on_group=on_group,
            )
        result = TedJoinResult(
            result=acc.finalize(n, float(eps)),
            total_candidates=total_candidates,
            profile=None,
        )
        return result, stats

    # ------------------------------------------------------------------
    # Timing path
    # ------------------------------------------------------------------

    def tile_plan(self, n: int) -> TilePlan:
        """Device WMMA dispatch schedule as a shared :class:`TilePlan`.

        TED-Join issues every 8x8-point tile of the (8-padded) full grid
        -- the WMMA fragment quantization the index variant's candidate
        padding mirrors.  ``TilePlan(symmetric=False)`` expresses exactly
        that schedule: the plan covers the real ``n`` rows (the last tile
        is the clipped remainder the device pads to 8) and its tile count
        equals the padded grid's.  :meth:`cost` takes its ``n_tiles``
        from here, and the functional brute path executes the same plan
        (``self_join(plan=kernel.tile_plan(n))``), so modeled and
        executed tile counts cannot drift (tests/test_workers.py pins the
        equality).
        """
        return TilePlan(n=n, row_block=8, symmetric=False)

    def cost(self, n: int, d: int) -> KernelCost:
        """Work-accounting cost of the brute kernel over the device plan.

        ``n_tiles`` / ``chunks_per_tile`` describe the WMMA dispatch the
        functional path executes: every tile of :meth:`tile_plan`, each
        running ``ceil(d / 4)`` 8x8x4 FP64 fragment steps.  The demand
        figures are derived from the calibrated efficiency curve (and the
        Table-6 conflict degrees), but **seconds still come from**
        :meth:`kernel_seconds` -- this cost exists so the modeled tile
        schedule is the engine's plan, not a private geometry.
        """
        if not self.supports(d):
            raise MemoryError(
                f"TED-Join ({'modified' if self.modified else 'original'}) "
                f"exceeds shared memory at d={d}"
            )
        plan = self.tile_plan(n)
        chunks = -(-d // 4)  # 8x8x4 FP64 fragments per k-step
        occ = max(1, self.occupancy(d))
        active_blocks = self.spec.sm_count * occ
        flops_per_chunk = 2.0 * 8 * 8 * 4
        # Cycles per chunk for one block at its share of the *sustained*
        # (efficiency-degraded) FP64 tensor throughput.
        sustained = self.spec.fp64_tc_flops * self.efficiency(d)
        tc_cycles = flops_per_chunk / (
            sustained / self.spec.boost_clock_hz / active_blocks
        )
        degree = wmma_conflict_degree(d)
        demand = ResourceDemand(
            tc_cycles=tc_cycles,
            # WMMA's rigid access patterns replay each ldmatrix-equivalent
            # load `degree`-fold (Table 6); charged against the staged
            # fragment bytes of one chunk.
            smem_load_cycles=(8 + 8) * 4 * 8 * degree / 128.0,
            issue_cycles=0.0,
            gmem_bytes=(8 + 8) * 4 * 8,  # two 8-point, 4-dim FP64 slices
            smem_store_bytes=(8 + 8) * 4 * 8,
        )
        return KernelCost(
            n_tiles=plan.n_tiles,
            chunks_per_tile=chunks,
            demand=demand,
            epilogue_cycles=0.0,
            pipeline=PipelineConfig(async_copy=False, depth=1),
            grid_blocks=active_blocks,
            blocks_per_sm=occ,
            l2_hit_rate=0.5,
            bank_conflict_rate=(degree - 1) / degree,
            plan=plan,
        )

    def efficiency(self, d: int) -> float:
        """Fraction of FP64 tensor-core peak sustained at dimensionality d."""
        if not self.supports(d):
            return 0.0
        return TED_EFF64 * (64.0 / max(d, 64)) ** TED_DECAY

    def derived_tflops(self, n: int, d: int) -> float:
        """Kernel-only derived TFLOPS for the brute-force variant (Fig. 9)."""
        if not self.supports(d):
            return 0.0
        return self.efficiency(d) * self.spec.fp64_tc_flops / 1e12

    def kernel_seconds(self, total_pair_work: float, d: int) -> float:
        """Kernel time for ``total_pair_work`` point-pair comparisons.

        The Index variant short-circuits at 8x8-tile granularity, which the
        candidate padding already accounts for; the work here is full-depth
        FP64 MACs over the padded candidate pairs.
        """
        if not self.supports(d):
            return float("inf")
        flops = 2.0 * total_pair_work * d
        return flops / (self.spec.fp64_tc_flops * self.efficiency(d))

    def response_time(
        self, n: int, d: int, *, total_pair_work: float, n_result_pairs: int
    ) -> ResponseTime:
        """End-to-end response time (Figure 10 methodology)."""
        build = (
            grid_build_seconds(self.spec, n, 6) if self.variant == "index" else 0.0
        )
        d2h, store = result_transfer_seconds(self.spec, n_result_pairs)
        return ResponseTime(
            h2d_s=h2d_seconds(self.spec, n, d, 8),
            index_build_s=build,
            kernel_s=self.kernel_seconds(total_pair_work, d),
            d2h_s=d2h,
            host_store_s=store,
            overhead_s=LAUNCH_OVERHEAD_S,
        )
