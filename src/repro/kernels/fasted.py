"""FaSTED: Fast and Scalable Tensor-core Euclidean Distance (paper Sec. 3).

The kernel has two faces, matching the simulator's design:

* :meth:`FastedKernel.self_join` -- the **functional** path.  Computes the
  actual self-join result with FaSTED's numerics: coordinates quantized to
  FP16, squared norms precomputed with round-toward-zero (Step 1), the
  cross-term GEMM in FP32 accumulation (Step 2), and the recombination
  ``dist^2 = s_i + s_j - 2 a_ij`` in FP32 (Step 3).  The computation is
  blocked exactly like the GPU kernel (128x128 block tiles over 64-dim
  k-chunks); a fragment-exact mode routes every tile through the simulated
  shared memory, ``ldmatrix`` and per-fragment RZ MMA for validation.

* :meth:`FastedKernel.timing` / :meth:`FastedKernel.derived_tflops` -- the
  **timing** path.  Assembles the per-chunk resource demands of one block
  tile from the configuration and optimization flags and resolves seconds /
  TFLOPS / profiler counters through :mod:`repro.gpusim.timing`.

Every optimization of paper Section 3.3 is a flag in
:class:`FastedOptimizations` so the Table-5 leave-one-out study is a loop.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

import numpy as np

from repro.core.engine import (
    StreamStats,
    TilePlan,
    WorkerPlan,
    norm_expansion_sq_dists,
    rect_join,
    streaming_join,
    streaming_self_join,
    symmetric_self_join,
)
from repro.core.results import JoinResult, NeighborResult, PairAccumulator
from repro.data.source import DatasetSource, as_source
from repro.fp.fp16 import quantize_fp16
from repro.fp.mma import gemm_fp16_32
from repro.fp.rounding import rz_sum_squares
from repro.gpusim import workqueue
from repro.gpusim.occupancy import blocks_per_sm, fasted_block_resources
from repro.gpusim.pipeline import PipelineConfig
from repro.gpusim.spec import DEFAULT_SPEC, GpuSpec
from repro.gpusim.timing import KernelCost, KernelTiming, ResourceDemand, resolve_timing
from repro.kernels import calibration as cal
from repro.kernels.base import (
    LAUNCH_OVERHEAD_S,
    ResponseTime,
    h2d_seconds,
    result_transfer_seconds,
)


@dataclass(frozen=True)
class FastedOptimizations:
    """The eight §3.3 optimizations as independent flags (paper Table 5)."""

    block_tile_ordering: bool = True  # §3.3.1 L2-friendly work-queue order
    block_tile: bool = True  # §3.3.2 shared-memory block tile
    memcpy_async: bool = True  # §3.3.4 async global->shared copies
    multistage_pipeline: bool = True  # §3.3.5 two-stage copy pipeline
    sm_block_residency: bool = True  # §3.3.6 two blocks per SM
    warp_tile: bool = True  # §3.3.7 64x64 register-reuse warp tile
    swizzle: bool = True  # §3.3.8 XOR-swizzled SMEM layout
    smem_alignment: bool = True  # §3.3.9 128 B-aligned SMEM

    def disable(self, name: str) -> "FastedOptimizations":
        """Copy with one optimization turned off.

        Disabling ``memcpy_async`` also disables the multi-stage pipeline,
        because synchronous copies cannot be pipelined (paper footnote 9).
        """
        if name not in {f.name for f in fields(self)}:
            raise KeyError(f"unknown optimization: {name!r}")
        out = replace(self, **{name: False})
        if name == "memcpy_async":
            out = replace(out, multistage_pipeline=False)
        return out

    @classmethod
    def names(cls) -> tuple[str, ...]:
        return tuple(f.name for f in fields(cls))

    @classmethod
    def leave_one_out(cls) -> dict[str, "FastedOptimizations"]:
        """The Table-5 study: each optimization disabled in isolation."""
        return {name: cls().disable(name) for name in cls.names()}


@dataclass(frozen=True)
class FastedConfig:
    """Tile/grid geometry (defaults = paper Table 2)."""

    block_points: int = 128  # block tile is block_points x block_points
    block_k: int = 64  # k-chunk depth staged in shared memory
    warp_tile_m: int = 64  # warp tile rows
    warp_tile_n: int = 64  # warp tile cols
    mma_m: int = 16
    mma_n: int = 8
    mma_k: int = 16
    warps_per_block: int = 4
    dispatch_shape: int = 8  # 8x8 block-tile dispatch squares
    blocks_per_sm: int = 2
    pipeline_depth: int = 2
    opts: FastedOptimizations = FastedOptimizations()

    def padded_points(self, n: int) -> int:
        """|D| padded to a multiple of the block tile edge."""
        return -(-n // self.block_points) * self.block_points

    def padded_dims(self, d: int) -> int:
        """Dimensionality padded to a multiple of the k-chunk depth.

        The paper (Section 4.2): dimensionalities that are not a multiple
        of 64 are zero-padded up to the next multiple.
        """
        return -(-d // self.block_k) * self.block_k

    def tile_plan(self, n: int) -> TilePlan:
        """Device block-tile schedule as a shared :class:`TilePlan`.

        The GPU work queue dispatches **every** ``block_points`` tile of
        the padded full grid (nothing is mirrored on the device), which is
        exactly ``TilePlan(symmetric=False)``: the plan covers the real
        ``n`` rows (its last tile is the clipped remainder the device
        zero-pads), and its tile *count* equals the padded grid's because
        both are the ceiling division.  The timing path
        (:meth:`FastedKernel.cost`) takes its ``n_tiles`` from this plan,
        and the functional executor runs the very same plan
        (``FastedKernel.self_join(plan=config.tile_plan(n))``) --
        tests/test_workers.py pins that the two walk identical tile
        counts.
        """
        return TilePlan(n=n, row_block=self.block_points, symmetric=False)

    def n_tiles(self, n: int) -> int:
        """Block tiles in the device schedule (= ``tile_plan(n).n_tiles``)."""
        return self.tile_plan(n).n_tiles

    def chunks_per_tile(self, d: int) -> int:
        return self.padded_dims(d) // self.block_k

    def total_flops(self, n: int, d: int) -> float:
        """MACs x2 over the padded all-pairs computation (derived TFLOPS)."""
        np_ = float(self.padded_points(n))
        return 2.0 * np_ * np_ * float(self.padded_dims(d))


class FastedKernel:
    """FaSTED on the simulated GPU: functional results + modeled timing."""

    def __init__(
        self, spec: GpuSpec = DEFAULT_SPEC, config: FastedConfig | None = None
    ) -> None:
        self.spec = spec
        self.config = config or FastedConfig()

    # ------------------------------------------------------------------
    # Functional path
    # ------------------------------------------------------------------

    def precompute_norms(self, data: np.ndarray, *, mode: str = "nearest") -> np.ndarray:
        """Step 1: ``s_i = sum_k p_ik^2`` of the FP16-quantized coordinates.

        The paper computes the norms with round-toward-zero "to match TC
        rounding" -- what matters is that the norm and the GEMM use the
        *same* rounding so the recombination ``s_i + s_j - 2 a_ij`` carries
        no systematic bias.  The fragment-exact path accumulates the GEMM
        with per-step RZ, so it pairs with ``mode="rz"``; the fast NumPy
        GEMM rounds to nearest, so the fast path pairs with
        ``mode="nearest"`` (the default).  Mixing the modes reintroduces
        exactly the one-sided bias the paper's choice avoids -- see
        tests/test_kernels_fasted.py::TestMatchedRounding.
        """
        if mode == "rz":
            return rz_sum_squares(data)
        if mode != "nearest":
            raise ValueError("mode must be 'nearest' or 'rz'")
        q = quantize_fp16(data)
        return (q * q).sum(axis=1, dtype=np.float32)

    def tile_sq_dists(
        self, p_block: np.ndarray, q_block: np.ndarray,
        s_p: np.ndarray, s_q: np.ndarray,
    ) -> np.ndarray:
        """Steps 2-3 for one tile: FP16-32 GEMM + FP32 recombination.

        Returns squared distances, clamped at zero (FP16 rounding can push
        tiny distances negative).
        """
        return norm_expansion_sq_dists(s_p, s_q, gemm_fp16_32(p_block, q_block))

    def auto_row_block(
        self, n: int, dim: int, workers: "int | str | WorkerPlan | None" = 0
    ) -> int:
        """Functional tile edge resolved when ``row_block=None``.

        The worker plan's cache-fit edge at this kernel's working
        itemsizes (FP32 distance tile, FP32 quantized operands) and
        dispatch quantum (``block_points``) -- the single source of truth
        shared by :meth:`self_join`, :meth:`join`, and the ``workers``
        benchmark entry.
        """
        return WorkerPlan.resolve(workers).tile_rows(
            n, dim, d2_itemsize=4, work_itemsize=4,
            quantum=self.config.block_points,
        )

    def self_join(
        self,
        data: np.ndarray,
        eps: float,
        *,
        store_distances: bool = True,
        row_block: int | None = None,
        workers: "int | str | WorkerPlan | None" = 0,
        plan: TilePlan | None = None,
    ) -> NeighborResult:
        """Compute the distance-similarity self-join with FaSTED numerics.

        The tile loop runs on the shared symmetric executor
        (:func:`repro.core.engine.symmetric_self_join`): by default only
        ``c0 >= r0`` tiles are evaluated and off-diagonal tiles are
        mirrored; an explicit ``plan`` (e.g. the device schedule from
        :meth:`FastedConfig.tile_plan`) overrides the geometry.

        Parameters
        ----------
        data:
            ``(n, d)`` dataset; quantized to FP16 internally.
        eps:
            Search radius; pairs with ``dist <= eps`` are returned.
        store_distances:
            Keep the squared distance of each pair (needed by the accuracy
            experiments; costs one float32 per pair).
        row_block:
            Functional blocking factor for the NumPy GEMM -- a performance
            knob only: the pair set is identical for any value (low-order
            distance bits can vary with BLAS tile-shape specialization).
            ``None`` (the default) lets the resolved
            :class:`~repro.core.engine.WorkerPlan` pick a cache-fit edge.
        workers:
            Worker-pool request resolved via
            :meth:`~repro.core.engine.WorkerPlan.resolve` (0 serial, N
            threads, ``"auto"`` for the topology plan); results are
            bit-identical either way.
        plan:
            Explicit :class:`~repro.core.engine.TilePlan` to execute
            (overrides ``row_block``); used by the timing-unification
            tests to run the device schedule functionally.
        """
        data = np.ascontiguousarray(data, dtype=np.float64)
        n, d = data.shape
        wp = WorkerPlan.resolve(workers)
        if plan is None and row_block is None:
            row_block = self.auto_row_block(n, d, wp)
        q16 = quantize_fp16(data)  # FP32 values on the FP16 grid
        s = self.precompute_norms(data)
        # Square the radius in FP64 before rounding to FP32 so boundary
        # ties resolve the same way as in an FP64 reference.
        eps2 = np.float32(float(eps) ** 2)

        def tile(r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
            return norm_expansion_sq_dists(
                s[r0:r1], s[c0:c1], q16[r0:r1] @ q16[c0:c1].T
            )

        acc = symmetric_self_join(
            n,
            eps2,
            tile,
            plan=plan,
            row_block=row_block if row_block is not None else 2048,
            store_distances=store_distances,
            workers=wp,
        )
        return acc.finalize(n, float(eps))

    def self_join_stream(
        self,
        source: DatasetSource,
        eps: float,
        *,
        store_distances: bool = True,
        row_block: int = 2048,
        memory_budget_bytes: int | None = None,
        prefetch: bool = True,
        acc: PairAccumulator | None = None,
        workers: "int | str | WorkerPlan | None" = 0,
    ) -> tuple[NeighborResult, StreamStats]:
        """Out-of-core self-join with FaSTED numerics (bit-identical).

        Runs on :func:`repro.core.engine.streaming_self_join`: row blocks
        are loaded from ``source`` on demand, quantization and the Step-1
        norms are computed per block (both are row-local operations, so the
        values match the resident path exactly), and only
        ``O(row_block * d)`` rows stay in memory.  Pass
        ``memory_budget_bytes`` to have the tile plan derived from a
        resident-set budget instead of a block size, ``acc`` (e.g. a
        disk-spilling accumulator) when the output itself outgrows memory,
        and ``workers`` to overlap tile GEMMs with the block prefetch
        (in-order commit; bit-identical to serial).

        Returns the result plus the :class:`~repro.core.engine.StreamStats`
        (blocks loaded, observed peak resident bytes).
        """
        source = as_source(source)
        eps2 = np.float32(float(eps) ** 2)
        prepare = self._block_state

        def block_sq_dists(row_state, col_state) -> np.ndarray:
            qr, sr = row_state
            qc, sc = col_state
            return norm_expansion_sq_dists(sr, sc, qr @ qc.T)

        out, stats = streaming_self_join(
            source,
            eps2,
            prepare,
            block_sq_dists,
            row_block=row_block,
            memory_budget_bytes=memory_budget_bytes,
            store_distances=store_distances,
            prefetch=prefetch,
            acc=acc,
            workers=workers,
        )
        return out.finalize(source.n, float(eps)), stats

    # ------------------------------------------------------------------
    # Two-source joins (A x B)
    # ------------------------------------------------------------------

    def _block_state(self, block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-block FaSTED state: FP16-grid coordinates + Step-1 norms.

        Row-local, so block-wise preparation is value-identical to slicing
        a whole-dataset precompute -- the bit-identity lever shared by the
        streaming self-join and the two-source executors.
        """
        q = quantize_fp16(block)
        return q, (q * q).sum(axis=1, dtype=np.float32)

    def join(
        self,
        a: np.ndarray,
        b: np.ndarray,
        eps: float,
        *,
        store_distances: bool = True,
        row_block: int | None = None,
        col_block: int | None = None,
        workers: "int | str | WorkerPlan | None" = 0,
    ) -> JoinResult:
        """Two-source join with FaSTED numerics: pairs ``(i in A, j in B)``.

        Runs on the rectangular executor (:func:`repro.core.engine.rect_join`):
        every tile of the A-rows x B-cols grid is evaluated, nothing is
        mirrored and no diagonal is cleared -- equal indices address
        different points.  ``row_block``/``col_block`` are performance
        knobs only for the pair set (FP32 low-order distance bits vary
        with BLAS tile shapes, as for the self-join); ``None`` lets the
        resolved worker plan pick a cache-fit edge.  ``workers``
        dispatches tiles to a thread pool with in-order commit
        (bit-identical to serial).
        """
        a = np.ascontiguousarray(a, dtype=np.float64)
        b = np.ascontiguousarray(b, dtype=np.float64)
        if a.shape[1] != b.shape[1]:
            raise ValueError("A and B dimensionalities must match")
        wp = WorkerPlan.resolve(workers)
        if row_block is None:
            row_block = self.auto_row_block(
                max(a.shape[0], b.shape[0]), a.shape[1], wp
            )
        qa, sa = self._block_state(a)
        qb, sb = self._block_state(b)
        eps2 = np.float32(float(eps) ** 2)

        def tile(r0: int, r1: int, c0: int, c1: int) -> np.ndarray:
            return norm_expansion_sq_dists(
                sa[r0:r1], sb[c0:c1], qa[r0:r1] @ qb[c0:c1].T
            )

        acc = rect_join(
            a.shape[0],
            b.shape[0],
            eps2,
            tile,
            row_block=row_block,
            col_block=col_block,
            store_distances=store_distances,
            workers=wp,
        )
        return acc.finalize_join(a.shape[0], b.shape[0], float(eps))

    def join_stream(
        self,
        source_a: DatasetSource,
        source_b: DatasetSource,
        eps: float,
        *,
        store_distances: bool = True,
        row_block: int = 2048,
        col_block: int | None = None,
        memory_budget_bytes: int | None = None,
        prefetch: bool = True,
        acc: PairAccumulator | None = None,
        workers: "int | str | WorkerPlan | None" = 0,
    ) -> tuple[JoinResult, StreamStats]:
        """Out-of-core two-source join (bit-identical to :meth:`join` at
        the same tile plan).

        Runs on :func:`repro.core.engine.streaming_join`: A's row blocks
        are pinned stripe by stripe while B's column blocks stream
        through, with prefetch spanning both sources.  Pass ``acc`` (e.g.
        a disk-spilling :class:`~repro.core.results.PairAccumulator`) when
        the output itself outgrows memory, and ``workers`` to overlap
        tile GEMMs with the prefetch (in-order commit; bit-identical).
        """
        source_a, source_b = as_source(source_a), as_source(source_b)
        eps2 = np.float32(float(eps) ** 2)

        def block_sq_dists(row_state, col_state) -> np.ndarray:
            qr, sr = row_state
            qc, sc = col_state
            return norm_expansion_sq_dists(sr, sc, qr @ qc.T)

        out, stats = streaming_join(
            source_a,
            source_b,
            eps2,
            self._block_state,
            block_sq_dists,
            row_block=row_block,
            col_block=col_block,
            memory_budget_bytes=memory_budget_bytes,
            store_distances=store_distances,
            prefetch=prefetch,
            acc=acc,
            workers=workers,
        )
        return out.finalize_join(source_a.n, source_b.n, float(eps)), stats

    # ------------------------------------------------------------------
    # Timing path
    # ------------------------------------------------------------------

    def _grid_blocks(self) -> int:
        per_sm = self.config.blocks_per_sm if self.config.opts.sm_block_residency else 1
        return self.spec.sm_count * per_sm

    def _occupancy(self) -> int:
        per_sm = self.config.blocks_per_sm if self.config.opts.sm_block_residency else 1
        res = fasted_block_resources(
            block_points=self.config.block_points,
            block_k=self.config.block_k,
            pipeline_depth=self.config.pipeline_depth
            if self.config.opts.multistage_pipeline
            else 1,
            warps_per_block=self.config.warps_per_block,
            warp_tile_m=self.config.warp_tile_m,
            warp_tile_n=self.config.warp_tile_n,
            async_copy=self.config.opts.memcpy_async,
        )
        return min(per_sm, max(1, blocks_per_sm(self.spec, res)))

    def _demand(self, active_blocks_per_sm: int) -> ResourceDemand:
        cfg = self.config
        opts = cfg.opts
        bp, bk = cfg.block_points, cfg.block_k
        # Tensor-core cycles: this chunk's MACs at the block's share of the
        # SM's tensor throughput.
        flops = 2.0 * bp * bp * bk
        per_block_rate = (
            self.spec.fp16_tc_flops_per_cycle_per_sm / active_blocks_per_sm
        )
        tc = flops / per_block_rate

        # ldmatrix traffic: each warp reads its warp tile's P and Q k-slices.
        n_warps = cfg.warps_per_block
        warp_bytes = (cfg.warp_tile_m + cfg.warp_tile_n) * bk * 2
        smem_read = warp_bytes * n_warps
        issue = cal.ISSUE_CYCLES_PER_CHUNK
        mma_count = (
            (cfg.warp_tile_m // cfg.mma_m)
            * (cfg.warp_tile_n // cfg.mma_n)
            * (bk // cfg.mma_k)
            * n_warps
        )
        if not opts.warp_tile:
            # No register reuse: every MMA reloads both operand fragments
            # and stalls on the dependent load.
            smem_read *= cal.NO_WARP_TILE_SMEM_FACTOR
            issue += mma_count * 1.5
        conflict_mult = 1.0
        if not (opts.swizzle and opts.smem_alignment):
            # 8-way ldmatrix conflicts, partially hidden by the scheduler.
            conflict_mult = 1.0 + 7.0 * cal.CONFLICT_EXPOSURE
        ld_rate = (
            cal.LDMATRIX_BYTES_PER_CYCLE_PER_SM / active_blocks_per_sm
        )
        smem_load = smem_read * conflict_mult / ld_rate
        stall = 0.0
        if not opts.warp_tile:
            stall = mma_count / n_warps * cal.NO_WARP_TILE_STALL_PER_MMA

        gmem = 2.0 * bp * bk * 2  # P^bf + Q^bf, FP16
        smem_store = gmem
        if not opts.block_tile:
            gmem *= cal.NO_BLOCK_TILE_TRAFFIC_FACTOR
            smem_store *= cal.NO_BLOCK_TILE_TRAFFIC_FACTOR

        return ResourceDemand(
            tc_cycles=tc,
            smem_load_cycles=smem_load + stall,
            issue_cycles=issue,
            gmem_bytes=gmem,
            smem_store_bytes=smem_store,
        )

    def _exposed_tile_latency(self, chunk_iter_compute: float, occupancy: int) -> float:
        """Per-tile serialized latency after co-resident-block hiding.

        With two blocks per SM, one block's queue-pop/drain/epilogue latency
        is hidden behind the other block's busy cycles; when the co-resident
        work (or the co-resident block itself) is absent, the latency is
        exposed -- which is both the low-d droop of Figure 8 and most of the
        SM-residency ablation of Table 5.
        """
        hidden = 0.0
        if occupancy >= 2:
            hidden = cal.TILE_LATENCY_HIDE * chunk_iter_compute
        return max(cal.TILE_LATENCY_CYCLES - hidden, cal.TILE_LATENCY_MIN_CYCLES)

    def cost(self, n: int, d: int) -> KernelCost:
        """Assemble the whole-kernel cost description for |D|=n, dims=d.

        The tile schedule comes from the same :class:`TilePlan` geometry
        the functional executor runs (:meth:`FastedConfig.tile_plan` --
        the full-grid device schedule), so the modeled ``n_tiles`` can
        never drift from what a functional run of that plan executes.
        """
        cfg = self.config
        occ = self._occupancy()
        demand = self._demand(occ)
        chunks = cfg.chunks_per_tile(d)
        plan = cfg.tile_plan(n)
        n_tiles = plan.n_tiles
        l2_hit = workqueue.analytic_l2_hit_rate(
            cfg.padded_points(n),
            cfg.padded_dims(d),
            tile_points=cfg.block_points,
            square=cfg.opts.block_tile_ordering,
            shape=cfg.dispatch_shape,
            l2_size_bytes=self.spec.l2_size_bytes,
        )
        pipe = PipelineConfig(
            async_copy=cfg.opts.memcpy_async,
            depth=cfg.pipeline_depth if cfg.opts.multistage_pipeline else 1,
        )
        busy = chunks * (demand.tc_cycles + demand.smem_load_cycles)
        epilogue = cal.EPILOGUE_CYCLES + self._exposed_tile_latency(busy, occ)
        conflict_rate = 0.0
        if not (cfg.opts.swizzle and cfg.opts.smem_alignment):
            conflict_rate = 1.0 - 1.0 / 8.0
        return KernelCost(
            n_tiles=n_tiles,
            chunks_per_tile=chunks,
            demand=demand,
            epilogue_cycles=epilogue,
            pipeline=pipe,
            grid_blocks=self._grid_blocks(),
            blocks_per_sm=occ,
            l2_hit_rate=l2_hit,
            fixed_overhead_s=cal.FIXED_KERNEL_OVERHEAD_S,
            bank_conflict_rate=conflict_rate,
            plan=plan,
        )

    def timing(self, n: int, d: int) -> KernelTiming:
        """Resolve the kernel timing for a brute-force self-join."""
        return resolve_timing(self.spec, self.cost(n, d))

    def derived_tflops(self, n: int, d: int) -> float:
        """The paper's kernel-only derived TFLOPS metric (Figures 8-9)."""
        t = self.timing(n, d)
        return t.derived_tflops(self.config.total_flops(n, d))

    def response_time(self, n: int, d: int, n_result_pairs: int) -> ResponseTime:
        """End-to-end response time (Figure 10 methodology).

        Includes host->device transfer of the FP16 dataset, the norms
        precompute pass, the main kernel, and moving/storing the result
        pairs on the host.
        """
        t = self.timing(n, d)
        norms_s = (
            n * d * 2 / self.spec.dram_bandwidth + LAUNCH_OVERHEAD_S
        )
        d2h, store = result_transfer_seconds(self.spec, n_result_pairs)
        return ResponseTime(
            h2d_s=h2d_seconds(self.spec, n, d, 2),
            index_build_s=norms_s,
            kernel_s=t.seconds,
            d2h_s=d2h,
            host_store_s=store,
            overhead_s=LAUNCH_OVERHEAD_S,
        )
