"""Fragment-exact FaSTED tile computation through the simulated data path.

The fast functional path (:meth:`repro.kernels.fasted.FastedKernel.self_join`)
computes tiles with one NumPy GEMM.  This module computes a block tile the
way the hardware does -- and *through the simulated hardware*:

1. the P and Q block fragments are stored into :class:`SharedMemory` with
   the Eq.-2 swizzle via cp.async-style store phases,
2. every warp's register fragments are loaded back with ``ldmatrix`` phase
   semantics (conflict-counted),
3. each 16x8x16 ``mma.sync`` runs with per-step round-toward-zero
   accumulation (:func:`repro.fp.mma.mma_m16n8k16`),
4. distances are recombined with RZ norms, matching the rounding mode.

It is orders of magnitude slower than the fast path and exists as the
executable specification: the test suite checks that both paths agree to
FP32 accumulation-order tolerance on random tiles, and that the whole tile
generated zero bank conflicts.
"""

from __future__ import annotations

import numpy as np

from repro.fp.mma import mma_m16n8k16
from repro.fp.rounding import rz_sum_squares
from repro.gpusim.ldmatrix import load_p_fragment, load_q_fragment
from repro.gpusim.smem import SharedMemory
from repro.gpusim.swizzle import layout, store_phase_addresses


def stage_block_fragment(
    coords: np.ndarray, *, swizzled: bool = True, aligned: bool = True
) -> SharedMemory:
    """Store a ``(points, 64)`` FP16 k-slice into simulated shared memory.

    Mirrors the cp.async store phases of paper Figure 5: one phase per
    point row, eight threads writing the row's eight 8-dim slices.
    """
    coords = np.asarray(coords, dtype=np.float16)
    if coords.ndim != 2 or coords.shape[1] != 64:
        raise ValueError("block fragment must be (points, 64)")
    smem = SharedMemory(n_chunks=coords.shape[0] * 8, aligned=aligned)
    lay = layout(swizzled)
    for p in range(coords.shape[0]):
        smem.store_phase(store_phase_addresses(lay, p), coords[p].reshape(8, 8))
    return smem


def block_tile_inner_products(
    p_block: np.ndarray,
    q_block: np.ndarray,
    *,
    swizzled: bool = True,
) -> tuple[np.ndarray, int]:
    """Accumulate a (P-points x Q-points) inner-product tile via fragments.

    Parameters
    ----------
    p_block:
        ``(mp, d)`` coordinates; ``mp`` a multiple of 16, ``d`` of 64.
    q_block:
        ``(mq, d)`` coordinates; ``mq`` a multiple of 8.
    swizzled:
        Shared-memory layout flag (both layouts are functionally correct;
        the transaction counts differ).

    Returns
    -------
    (tile, transactions):
        ``(mp, mq)`` float32 inner products accumulated with tensor-core
        rounding, and the total shared-memory load transactions used.
    """
    p_block = np.asarray(p_block)
    q_block = np.asarray(q_block)
    mp, d = p_block.shape
    mq = q_block.shape[0]
    if mp % 16 or mq % 8 or d % 64 or q_block.shape[1] != d:
        raise ValueError("tile shape must be (16a, 64c) x (8b, 64c)")
    lay = layout(swizzled)
    acc = np.zeros((mp, mq), dtype=np.float32)
    transactions = 0
    for k0 in range(0, d, 64):
        p_smem = stage_block_fragment(p_block[:, k0 : k0 + 64], swizzled=swizzled)
        q_smem = stage_block_fragment(q_block[:, k0 : k0 + 64], swizzled=swizzled)
        for ks in range(4):  # four 16-dim k-slices per 64-dim chunk
            for pr in range(0, mp, 16):
                a = load_p_fragment(p_smem, lay, pr, ks)
                for qr in range(0, mq, 8):
                    b = load_q_fragment(q_smem, lay, qr, ks)
                    acc[pr : pr + 16, qr : qr + 8] = mma_m16n8k16(
                        a, b, acc[pr : pr + 16, qr : qr + 8]
                    )
        transactions += (
            p_smem.stats.load_transactions + q_smem.stats.load_transactions
        )
    return acc, transactions


def block_tile_sq_dists(
    p_block: np.ndarray, q_block: np.ndarray, *, swizzled: bool = True
) -> np.ndarray:
    """Full fragment-exact squared-distance tile (Steps 1-3, RZ throughout)."""
    inner, _ = block_tile_inner_products(p_block, q_block, swizzled=swizzled)
    s_p = rz_sum_squares(np.asarray(p_block, dtype=np.float64))
    s_q = rz_sum_squares(np.asarray(q_block, dtype=np.float64))
    d2 = s_p[:, None] + s_q[None, :] - 2.0 * inner
    return np.maximum(d2, 0.0, out=d2)
