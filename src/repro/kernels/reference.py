"""Seed (pre-engine) reference join implementations and bit-identity helpers.

The join engine's contract is *bit-identity with the seed implementations*:
the plain tile/cell loops the kernels ran before the shared executor
existed.  Those loops are preserved here verbatim as the single source of
truth that both the test suite (tests/test_engine.py) and the perf
benchmark (benchmarks/bench_engine_throughput.py) compare against -- one
copy, so the pinned baseline cannot silently drift between the two.

These are reference implementations, not fallbacks: nothing in the library
calls them at runtime.  They follow the same spirit as
:func:`repro.fp.rounding.round_toward_zero_f32_reference`.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import NeighborResult
from repro.fp.fp16 import quantize_fp16


def canon(res: NeighborResult) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Lexicographically ordered ``(pairs_i, pairs_j, sq_dists)``."""
    order = np.lexsort((res.pairs_j, res.pairs_i))
    sq = res.sq_dists[order] if res.sq_dists.size else res.sq_dists
    return res.pairs_i[order], res.pairs_j[order], sq


def joins_bit_identical(a: NeighborResult, b: NeighborResult) -> bool:
    """Same pair set (order-insensitive) and bitwise-equal distances."""
    ai, aj, ad = canon(a)
    bi, bj, bd = canon(b)
    return (
        np.array_equal(ai, bi)
        and np.array_equal(aj, bj)
        and np.array_equal(ad.view(np.uint32), bd.view(np.uint32))
    )


def seed_fasted_join(
    data: np.ndarray, eps: float, row_block: int = 2048
) -> NeighborResult:
    """Seed FaSTED functional path: symmetric tiles, Python-list collection."""
    data = np.ascontiguousarray(data, dtype=np.float64)
    n = data.shape[0]
    q16 = quantize_fp16(data)
    s = (q16 * q16).sum(axis=1, dtype=np.float32)
    eps2 = np.float32(float(eps) ** 2)
    out_i, out_j, out_d = [], [], []
    for r0 in range(0, n, row_block):
        r1 = min(r0 + row_block, n)
        for c0 in range(r0, n, row_block):
            c1 = min(c0 + row_block, n)
            d2 = s[r0:r1, None] + s[None, c0:c1] - 2.0 * (
                q16[r0:r1] @ q16[c0:c1].T
            )
            np.maximum(d2, 0.0, out=d2)
            mask = d2 <= eps2
            if c0 == r0:
                np.fill_diagonal(mask, False)
            ii, jj = np.nonzero(mask)
            gi = ii.astype(np.int64) + r0
            gj = jj.astype(np.int64) + c0
            out_i.append(gi)
            out_j.append(gj)
            if c0 != r0:
                out_i.append(gj)
                out_j.append(gi)
            dd = d2[ii, jj].astype(np.float32)
            out_d.append(dd)
            if c0 != r0:
                out_d.append(dd)
    return NeighborResult(
        n_points=n,
        eps=float(eps),
        pairs_i=np.concatenate(out_i) if out_i else np.empty(0, np.int64),
        pairs_j=np.concatenate(out_j) if out_j else np.empty(0, np.int64),
        sq_dists=np.concatenate(out_d) if out_d else np.empty(0, np.float32),
    )


def seed_ted_brute_join(
    data: np.ndarray, eps: float, block: int = 2048
) -> NeighborResult:
    """Seed TED-Join brute: full n x n matrix, no symmetry."""
    data = np.ascontiguousarray(data, dtype=np.float64)
    n = data.shape[0]
    eps2 = float(eps) ** 2
    s = (data * data).sum(axis=1)
    out_i, out_j, out_d = [], [], []
    for r0 in range(0, n, block):
        r1 = min(r0 + block, n)
        d2 = s[r0:r1, None] + s[None, :] - 2.0 * (data[r0:r1] @ data.T)
        np.maximum(d2, 0.0, out=d2)
        mask = d2 <= eps2
        mask[np.arange(r0, r1) - r0, np.arange(r0, r1)] = False
        ii, jj = np.nonzero(mask)
        out_i.append(ii.astype(np.int64) + r0)
        out_j.append(jj.astype(np.int64))
        out_d.append(d2[ii, jj].astype(np.float32))
    return NeighborResult(
        n_points=n,
        eps=float(eps),
        pairs_i=np.concatenate(out_i) if out_i else np.empty(0, np.int64),
        pairs_j=np.concatenate(out_j) if out_j else np.empty(0, np.int64),
        sq_dists=np.concatenate(out_d) if out_d else np.empty(0, np.float32),
    )


def seed_candidate_join(
    data: np.ndarray,
    eps: float,
    groups,
    work_dtype,
    *,
    einsum_norms: bool = False,
) -> NeighborResult:
    """Seed per-cell candidate loop shared by TED-index / GDS / MiSTIC.

    ``einsum_norms`` mirrors MiSTIC's seed, which precomputed norms with
    einsum; the others used a row sum (reduction order differs, so each
    kernel is mirrored exactly).
    """
    data = np.ascontiguousarray(data, dtype=np.float64)
    n = data.shape[0]
    work = data.astype(work_dtype)
    eps2 = (
        work_dtype(float(eps) ** 2)
        if work_dtype is not np.float64
        else float(eps) ** 2
    )
    if einsum_norms:
        s = np.einsum("nd,nd->n", work, work)
    else:
        s = (work * work).sum(axis=1)
    out_i, out_j, out_d = [], [], []
    for members, candidates in groups:
        if members.size == 0 or candidates.size == 0:
            continue
        d2 = (
            s[members][:, None]
            + s[candidates][None, :]
            - 2.0 * (work[members] @ work[candidates].T)
        )
        np.maximum(d2, 0.0, out=d2)
        mask = d2 <= eps2
        mi, cj = np.nonzero(mask)
        gi = members[mi]
        gj = candidates[cj]
        keep = gi != gj
        out_i.append(gi[keep])
        out_j.append(gj[keep])
        out_d.append(d2[mi, cj][keep].astype(np.float32))
    return NeighborResult(
        n_points=n,
        eps=float(eps),
        pairs_i=np.concatenate(out_i) if out_i else np.empty(0, np.int64),
        pairs_j=np.concatenate(out_j) if out_j else np.empty(0, np.int64),
        sq_dists=np.concatenate(out_d) if out_d else np.empty(0, np.float32),
    )
