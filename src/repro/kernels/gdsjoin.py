"""GDS-Join: grid-indexed CUDA-core self-join (paper Section 2.6).

The FP32 reference baseline (and, in FP64 mode, the accuracy ground truth
of paper Section 4.6).  Functionally: a :class:`repro.index.grid.GridIndex`
generates per-cell candidate sets and distances are computed only against
candidates, with the precision requested.  The index can be built from an
in-memory ndarray or **out of core** from a
:class:`~repro.data.source.DatasetSource` (``GridIndex.from_source``; see
:meth:`GdsJoinKernel.self_join_source`), in which case candidate rows are
gathered from the source on demand and the dataset is never resident.
Two-source joins (:meth:`GdsJoinKernel.join`) drop the left set's points
into the right set's grid.  Timing: index construction + short-circuiting
CUDA-core distance pass (measured candidate counts and short-circuit
profile) + batched result transfers, per the paper's end-to-end
methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import (
    GROUP_CHUNK_ELEMS,
    SourceWorkView,
    StreamStats,
    TilePlan,
    WorkerPlan,
    auto_batched_from_stats,
    batch_params_from_stats,
    batched_candidate_self_join,
    candidate_join,
    candidate_self_join,
    norm_expansion_sq_dists,
    process_candidate_self_join,
)
from repro.core.results import JoinResult, NeighborResult
from repro.gpusim.spec import DEFAULT_SPEC, GpuSpec
from repro.index.grid import GridIndex, variance_order
from repro.kernels.base import (
    LAUNCH_OVERHEAD_S,
    ResponseTime,
    h2d_seconds,
    result_transfer_seconds,
)
from repro.gpusim.timing import KernelCost
from repro.kernels.cudacore import (
    ShortCircuitProfile,
    cuda_candidate_cost,
    cuda_kernel_seconds,
    grid_build_seconds,
    short_circuit_profile,
)

#: Fraction of FP32 peak a tuned gather-heavy CUDA-core kernel sustains;
#: covers divergence and imperfect intra/inter-warp load balance (the
#: weaknesses MiSTIC improves on).  Calibrated against Figure 10.
GDS_EFFICIENCY = 0.065


@dataclass
class GdsJoinResult:
    """Functional result plus the statistics the timing model consumes."""

    result: NeighborResult
    total_candidates: int
    profile: ShortCircuitProfile
    n_indexed_dims: int


class GdsJoinKernel:
    """GDS-Join on the simulated GPU.

    Parameters
    ----------
    spec:
        GPU model.
    precision:
        ``"fp32"`` (paper baseline) or ``"fp64"`` (accuracy ground truth).
    n_index_dims:
        Indexed dimension count (grid fan-out is 3^r).
    """

    def __init__(
        self,
        spec: GpuSpec = DEFAULT_SPEC,
        *,
        precision: str = "fp32",
        n_index_dims: int = 6,
    ) -> None:
        if precision not in {"fp32", "fp64"}:
            raise ValueError("precision must be 'fp32' or 'fp64'")
        self.spec = spec
        self.precision = precision
        self.n_index_dims = n_index_dims

    @property
    def _dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.precision == "fp32" else np.float64)

    def self_join(
        self,
        data: np.ndarray,
        eps: float,
        *,
        store_distances: bool = True,
        batched: bool | None = None,
        batch_params: dict | None = None,
        workers: "int | str | WorkerPlan | None" = 0,
    ) -> GdsJoinResult:
        """Index-supported self-join; returns result + cost statistics.

        Runs on the shared candidate-group executors: per-group GEMMs
        (:func:`repro.core.engine.candidate_self_join`, pinned
        bit-identical to the seed loop) or -- batched -- small
        neighboring cell groups fused into padded batch GEMMs
        (:func:`repro.core.engine.batched_candidate_self_join`; same pair
        set, faster at small eps).  ``batched=None`` (the default) picks
        per index shape: the grid's measured group-size moments decide
        whether the typical group is call-overhead-bound
        (:func:`repro.core.engine.auto_batched_from_stats`); explicit
        ``True`` / ``False`` forces.  ``workers`` fans the candidate
        groups out to the engine's process pool
        (:func:`repro.core.engine.process_candidate_self_join` -- the
        per-group work is too fine-grained for threads); commit order is
        group order, so the parallel result is bit-identical to serial
        (pair-set-equal in batched mode, as for batching itself).  The
        candidate tally and profiling sample ride along via the
        ``on_group`` hook in every mode.  Batched-executor knobs are
        derived from the grid's measured group-size moments
        (:func:`repro.core.engine.batch_params_from_stats` over
        ``GridIndex.stats()``); ``batch_params`` overrides any of them
        (``batch_elems`` / ``max_batch_groups`` / ``single_elems`` /
        ``min_fill``) verbatim.
        """
        data = np.ascontiguousarray(data, dtype=np.float64)
        n = data.shape[0]
        wp = WorkerPlan.resolve(workers)
        index = GridIndex(data, eps, n_dims=self.n_index_dims)
        if batched is None:
            batched = auto_batched_from_stats(index.stats())
        work = data.astype(self._dtype)
        eps2 = self._dtype.type(float(eps) ** 2)
        # One chunk bound for every execution branch: the fork workers
        # mirror it, so serial and parallel chunking can never diverge
        # (the bit-identity lever).
        chunk = max(1, GROUP_CHUNK_ELEMS // max(data.shape[1], 1))

        total_candidates = 0
        sample_i, sample_j = [], []

        def on_group(members: np.ndarray, candidates: np.ndarray) -> None:
            nonlocal total_candidates
            total_candidates += members.size * candidates.size
            if len(sample_i) < 64:  # keep some candidate pairs for profiling
                take = min(candidates.size, 32)
                sample_i.append(np.repeat(members, take))
                sample_j.append(np.tile(candidates[:take], members.size))

        if batched:
            sq_norms = (work * work).sum(axis=1)
            # The executors consume size-sorted cells (better batch
            # packing), but the profiling sample must be drawn the same
            # way as the per-group path -- the first cells in *lex*
            # order -- or the short-circuit profile (and the timing model
            # built on it) would skew toward the smallest cells.
            for members, candidates in index.iter_cells():
                if len(sample_i) >= 64:
                    break
                if members.size and candidates.size:
                    on_group(members, candidates)
            total_candidates = 0  # re-tallied in full by the executor

            def tally(members: np.ndarray, candidates: np.ndarray) -> None:
                nonlocal total_candidates
                total_candidates += members.size * candidates.size

            params = batch_params_from_stats(
                index.stats(), **(batch_params or {})
            )
            if wp.parallel:
                acc = process_candidate_self_join(
                    index.iter_cells(order="size"),
                    work,
                    sq_norms,
                    eps2,
                    store_distances=store_distances,
                    on_group=tally,
                    workers=wp,
                    batched=True,
                    batch_params=params,
                )
            else:
                acc = batched_candidate_self_join(
                    index.iter_cells(order="size"),
                    work,
                    sq_norms,
                    eps2,
                    store_distances=store_distances,
                    on_group=tally,
                    **params,
                )
            return self._finalize(acc, data, eps, total_candidates, sample_i, sample_j, index)

        if wp.parallel:
            acc = process_candidate_self_join(
                index.iter_cells(),
                work,
                (work * work).sum(axis=1),
                eps2,
                store_distances=store_distances,
                candidate_chunk=chunk,
                on_group=on_group,
                workers=wp,
            )
            return self._finalize(
                acc, data, eps, total_candidates, sample_i, sample_j, index
            )

        # The engine chunks wide candidate lists, calling dist() several
        # times per group with the *same* members array: hoist the member
        # gather + norms across those calls (memo keyed by the live array).
        group_state: dict[str, np.ndarray] = {}

        def dist(members: np.ndarray, cand: np.ndarray) -> np.ndarray:
            # Distance via the norm expansion in the working precision,
            # chunked (candidate_chunk) to bound temporaries.  (The real
            # CUDA-core kernel accumulates differences; in FP64 the two are
            # equivalent to ~1e-13 relative, and in FP32 the expansion's
            # extra rounding is two orders of magnitude below the FP16
            # effects the accuracy study measures.)
            if group_state.get("members") is not members:
                wm = work[members]
                group_state["members"] = members
                group_state["wm"] = wm
                group_state["sm"] = (wm * wm).sum(axis=1)
            wm = group_state["wm"]
            sm = group_state["sm"]
            wc = work[cand]
            sc = (wc * wc).sum(axis=1)
            return norm_expansion_sq_dists(sm, sc, wm @ wc.T)

        acc = candidate_self_join(
            index.iter_cells(),
            dist,
            eps2,
            store_distances=store_distances,
            candidate_chunk=chunk,
            on_group=on_group,
        )
        return self._finalize(acc, data, eps, total_candidates, sample_i, sample_j, index)

    def self_join_source(
        self,
        source,
        eps: float,
        *,
        store_distances: bool = True,
        row_block: int = 65536,
        memory_budget_bytes: int | None = None,
        batched: bool | None = None,
        batch_params: dict | None = None,
    ) -> tuple[GdsJoinResult, StreamStats]:
        """Self-join against a source: out-of-core grid build + row gathers.

        The grid comes from ``GridIndex.from_source`` (streamed cell-key
        encoding + external counting sort -- the ``(n, d)`` dataset is
        never resident) and the candidate executor gathers member and
        candidate rows on demand with ``source.take``, converting to the
        working precision per gather exactly as the in-memory path
        converts per slice.  Cell iteration order, per-group norms and
        GEMM shapes are unchanged, so the result is **bit-identical** to
        :meth:`self_join` on the materialized data (pinned by
        tests/test_two_source.py).  The short-circuit profile is measured
        on the gathered sample rows, so the timing statistics ride along
        as usual.

        ``batched=True`` (or ``None`` resolving true via
        :func:`repro.core.engine.auto_batched_from_stats` over the
        streamed grid's stats) routes the groups through the
        padded-batch-GEMM executor with the ``take()`` gathers
        **batched**: a
        :class:`~repro.core.engine.SourceWorkView` stands in for the
        resident work arrays, so each flush issues one concatenated
        gather per side instead of one per group -- the pair set matches
        the per-group source path (the batched executor's usual
        contract), with knobs derived from ``GridIndex.stats()`` and
        overridable via ``batch_params``.

        Returns ``(GdsJoinResult, StreamStats)``; the stats account the
        build passes' block loads plus the executor's transient gathers.
        """
        from repro.data.source import as_source

        source = as_source(source)
        n, d = int(source.n), int(source.dim)
        if memory_budget_bytes is not None:
            row_block = TilePlan.from_budget(n, d, int(memory_budget_bytes)).row_block
        stats = StreamStats(plan=TilePlan(n=n, row_block=row_block))
        index = GridIndex.from_source(
            source, eps, n_dims=self.n_index_dims, row_block=row_block,
            stats=stats,
        )
        if batched is None:
            batched = auto_batched_from_stats(index.stats())
        eps2 = self._dtype.type(float(eps) ** 2)

        total_candidates = 0
        sample_i, sample_j = [], []

        def on_group(members: np.ndarray, candidates: np.ndarray) -> None:
            nonlocal total_candidates
            total_candidates += members.size * candidates.size
            if len(sample_i) < 64:
                take = min(candidates.size, 32)
                sample_i.append(np.repeat(members, take))
                sample_j.append(np.tile(candidates[:take], members.size))

        if batched:
            # Sample in lex order (as the per-group path draws it) before
            # handing the size-sorted groups to the batched executor --
            # same convention as the in-memory batched mode.
            for members, candidates in index.iter_cells():
                if len(sample_i) >= 64:
                    break
                if members.size and candidates.size:
                    on_group(members, candidates)
            total_candidates = 0  # re-tallied in full by the executor

            def tally(members: np.ndarray, candidates: np.ndarray) -> None:
                nonlocal total_candidates
                total_candidates += members.size * candidates.size

            params = batch_params_from_stats(
                index.stats(), **(batch_params or {})
            )
            view = SourceWorkView(source, self._dtype, stats=stats)
            try:
                acc = batched_candidate_self_join(
                    index.iter_cells(order="size"),
                    view.work,
                    view.sq_norms,
                    eps2,
                    store_distances=store_distances,
                    on_group=tally,
                    **params,
                )
            finally:
                view.close()
            result = self._finalize_source(
                acc, source, eps, total_candidates, sample_i, sample_j, index
            )
            return result, stats

        # Same member-gather memoization as the in-memory path: the engine
        # chunks wide candidate lists, re-calling dist() with the same
        # members array.
        group_state: dict[str, np.ndarray] = {}

        def dist(members: np.ndarray, cand: np.ndarray) -> np.ndarray:
            if group_state.get("members") is not members:
                wm = source.take(members).astype(self._dtype)
                group_state["members"] = members
                group_state["wm"] = wm
                group_state["sm"] = (wm * wm).sum(axis=1)
            wm = group_state["wm"]
            sm = group_state["sm"]
            wc = source.take(cand).astype(self._dtype)
            stats._acquire(wm.nbytes + wc.nbytes)
            try:
                sc = (wc * wc).sum(axis=1)
                return norm_expansion_sq_dists(sm, sc, wm @ wc.T)
            finally:
                stats._release(wm.nbytes + wc.nbytes)

        acc = candidate_self_join(
            index.iter_cells(),
            dist,
            eps2,
            store_distances=store_distances,
            candidate_chunk=max(1, GROUP_CHUNK_ELEMS // max(d, 1)),
            on_group=on_group,
        )
        result = self._finalize_source(
            acc, source, eps, total_candidates, sample_i, sample_j, index
        )
        return result, stats

    def join(
        self,
        a: np.ndarray,
        b: np.ndarray,
        eps: float,
        *,
        store_distances: bool = True,
        workers: "int | str | WorkerPlan | None" = 0,
    ) -> JoinResult:
        """Two-source grid join: pairs ``(i in A, j in B)`` within ``eps``.

        The grid indexes **B**; A's points are dropped into it with B's
        variance order and cell width (``GridIndex.iter_join_groups``) and
        each query group is evaluated against the 3^r adjacent cells'
        B points by the two-source candidate executor
        (:func:`repro.core.engine.candidate_join` -- no self pairs exist
        to drop), fanned out to the process pool when ``workers`` asks
        for one (bit-identical, in-order commit).  Functional path only;
        timing stays self-join-scoped.
        """
        a = np.ascontiguousarray(a, dtype=np.float64)
        b = np.ascontiguousarray(b, dtype=np.float64)
        if a.shape[1] != b.shape[1]:
            raise ValueError("A and B dimensionalities must match")
        wp = WorkerPlan.resolve(workers)
        index = GridIndex(b, eps, n_dims=self.n_index_dims)
        wa = a.astype(self._dtype)
        wb = b.astype(self._dtype)
        sa = (wa * wa).sum(axis=1)
        sb = (wb * wb).sum(axis=1)
        eps2 = self._dtype.type(float(eps) ** 2)
        chunk = max(1, GROUP_CHUNK_ELEMS // max(a.shape[1], 1))
        if wp.parallel:
            acc = process_candidate_self_join(
                index.iter_join_groups(a),
                wa,
                sa,
                eps2,
                store_distances=store_distances,
                candidate_chunk=chunk,
                workers=wp,
                drop_self=False,
                work_right=wb,
                sq_norms_right=sb,
            )
            return acc.finalize_join(a.shape[0], b.shape[0], float(eps))

        def dist(members: np.ndarray, cand: np.ndarray) -> np.ndarray:
            return norm_expansion_sq_dists(
                sa[members], sb[cand], wa[members] @ wb[cand].T
            )

        acc = candidate_join(
            index.iter_join_groups(a),
            dist,
            eps2,
            store_distances=store_distances,
            candidate_chunk=chunk,
        )
        return acc.finalize_join(a.shape[0], b.shape[0], float(eps))

    def _finalize_source(
        self, acc, source, eps, total_candidates, sample_i, sample_j, index
    ) -> GdsJoinResult:
        """Source-mode epilogue: profile measured on gathered sample rows."""
        result = acc.finalize(source.n, float(eps))
        si = np.concatenate(sample_i) if sample_i else np.empty(0, np.int64)
        sj = np.concatenate(sample_j) if sample_j else np.empty(0, np.int64)
        # Compact the sampled pair indices so the profile touches only the
        # sampled rows, not the dataset.
        uniq, inv = np.unique(np.concatenate((si, sj)), return_inverse=True)
        sample_rows = source.take(uniq)
        profile = short_circuit_profile(
            sample_rows,
            eps,
            (inv[: si.size], inv[si.size :]),
            order=index.order,
        )
        return GdsJoinResult(
            result=result,
            total_candidates=total_candidates,
            profile=profile,
            n_indexed_dims=index.r,
        )

    def _finalize(
        self, acc, data, eps, total_candidates, sample_i, sample_j, index
    ) -> GdsJoinResult:
        """Shared epilogue: result + short-circuit profile + statistics."""
        result = acc.finalize(data.shape[0], float(eps))
        cand_pairs = (
            np.concatenate(sample_i) if sample_i else np.empty(0, np.int64),
            np.concatenate(sample_j) if sample_j else np.empty(0, np.int64),
        )
        profile = short_circuit_profile(
            data, eps, cand_pairs, order=variance_order(data)
        )
        return GdsJoinResult(
            result=result,
            total_candidates=total_candidates,
            profile=profile,
            n_indexed_dims=index.r,
        )

    def cost(
        self, d: int, *, total_candidates: int, profile: ShortCircuitProfile
    ) -> KernelCost:
        """Measured-work cost view of the CUDA-core candidate pass.

        Built by :func:`repro.kernels.cudacore.cuda_candidate_cost` from
        the same measured statistics :meth:`response_time` charges, so
        modeled and executed work agree by construction.
        """
        return cuda_candidate_cost(
            self.spec, d,
            total_candidates=total_candidates,
            profile=profile,
            efficiency=GDS_EFFICIENCY,
            elem_bytes=self._dtype.itemsize,
        )

    def response_time(
        self,
        n: int,
        d: int,
        *,
        total_candidates: int,
        profile: ShortCircuitProfile,
        n_result_pairs: int,
    ) -> ResponseTime:
        """End-to-end response time from measured join statistics."""
        elem = self._dtype.itemsize
        kernel = cuda_kernel_seconds(
            self.spec, total_candidates, d, profile, GDS_EFFICIENCY
        )
        d2h, store = result_transfer_seconds(self.spec, n_result_pairs)
        return ResponseTime(
            h2d_s=h2d_seconds(self.spec, n, d, elem),
            index_build_s=grid_build_seconds(self.spec, n, self.n_index_dims),
            kernel_s=kernel,
            d2h_s=d2h,
            host_store_s=store,
            overhead_s=LAUNCH_OVERHEAD_S,
        )
