"""GDS-Join: grid-indexed CUDA-core self-join (paper Section 2.6).

The FP32 reference baseline (and, in FP64 mode, the accuracy ground truth
of paper Section 4.6).  Functionally: a :class:`repro.index.grid.GridIndex`
generates per-cell candidate sets and distances are computed only against
candidates, with the precision requested.  Timing: index construction +
short-circuiting CUDA-core distance pass (measured candidate counts and
short-circuit profile) + batched result transfers, per the paper's
end-to-end methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import NeighborResult
from repro.gpusim.spec import DEFAULT_SPEC, GpuSpec
from repro.index.grid import GridIndex, variance_order
from repro.kernels.base import (
    LAUNCH_OVERHEAD_S,
    ResponseTime,
    h2d_seconds,
    result_transfer_seconds,
)
from repro.kernels.cudacore import (
    ShortCircuitProfile,
    cuda_kernel_seconds,
    grid_build_seconds,
    short_circuit_profile,
)

#: Fraction of FP32 peak a tuned gather-heavy CUDA-core kernel sustains;
#: covers divergence and imperfect intra/inter-warp load balance (the
#: weaknesses MiSTIC improves on).  Calibrated against Figure 10.
GDS_EFFICIENCY = 0.065


@dataclass
class GdsJoinResult:
    """Functional result plus the statistics the timing model consumes."""

    result: NeighborResult
    total_candidates: int
    profile: ShortCircuitProfile
    n_indexed_dims: int


class GdsJoinKernel:
    """GDS-Join on the simulated GPU.

    Parameters
    ----------
    spec:
        GPU model.
    precision:
        ``"fp32"`` (paper baseline) or ``"fp64"`` (accuracy ground truth).
    n_index_dims:
        Indexed dimension count (grid fan-out is 3^r).
    """

    def __init__(
        self,
        spec: GpuSpec = DEFAULT_SPEC,
        *,
        precision: str = "fp32",
        n_index_dims: int = 6,
    ) -> None:
        if precision not in {"fp32", "fp64"}:
            raise ValueError("precision must be 'fp32' or 'fp64'")
        self.spec = spec
        self.precision = precision
        self.n_index_dims = n_index_dims

    @property
    def _dtype(self) -> np.dtype:
        return np.dtype(np.float32 if self.precision == "fp32" else np.float64)

    def self_join(
        self, data: np.ndarray, eps: float, *, store_distances: bool = True
    ) -> GdsJoinResult:
        """Index-supported self-join; returns result + cost statistics."""
        data = np.ascontiguousarray(data, dtype=np.float64)
        n = data.shape[0]
        index = GridIndex(data, eps, n_dims=self.n_index_dims)
        work = data.astype(self._dtype)
        eps2 = self._dtype.type(float(eps) ** 2)

        out_i, out_j, out_d = [], [], []
        total_candidates = 0
        sample_i, sample_j = [], []
        chunk = max(1, 2_000_000 // max(data.shape[1], 1))
        for members, candidates in index.iter_cells():
            if members.size == 0 or candidates.size == 0:
                continue
            total_candidates += members.size * candidates.size
            if len(sample_i) < 64:  # keep some candidate pairs for profiling
                take = min(candidates.size, 32)
                sample_i.append(np.repeat(members, take))
                sample_j.append(np.tile(candidates[:take], members.size))
            wm = work[members]
            # Distance via the norm expansion in the working precision,
            # chunked to bound temporaries.  (The real CUDA-core kernel
            # accumulates differences; in FP64 the two are equivalent to
            # ~1e-13 relative, and in FP32 the expansion's extra rounding
            # is two orders of magnitude below the FP16 effects the
            # accuracy study measures -- see tests/test_gdsjoin.py.)
            sm = (wm * wm).sum(axis=1)
            for c0 in range(0, candidates.size, chunk):
                cand = candidates[c0 : c0 + chunk]
                wc = work[cand]
                sc = (wc * wc).sum(axis=1)
                d2 = sm[:, None] + sc[None, :] - 2.0 * (wm @ wc.T)
                np.maximum(d2, 0.0, out=d2)
                mask = d2 <= eps2
                mi, cj = np.nonzero(mask)
                gi = members[mi]
                gj = cand[cj]
                keep = gi != gj
                out_i.append(gi[keep])
                out_j.append(gj[keep])
                if store_distances:
                    out_d.append(d2[mi, cj][keep].astype(np.float32))
        pairs_i = np.concatenate(out_i) if out_i else np.empty(0, np.int64)
        pairs_j = np.concatenate(out_j) if out_j else np.empty(0, np.int64)
        sq = (
            np.concatenate(out_d)
            if (store_distances and out_d)
            else np.empty(0, np.float32)
        )
        result = NeighborResult(
            n_points=n, eps=float(eps), pairs_i=pairs_i, pairs_j=pairs_j, sq_dists=sq
        )
        cand_pairs = (
            np.concatenate(sample_i) if sample_i else np.empty(0, np.int64),
            np.concatenate(sample_j) if sample_j else np.empty(0, np.int64),
        )
        profile = short_circuit_profile(
            data, eps, cand_pairs, order=variance_order(data)
        )
        return GdsJoinResult(
            result=result,
            total_candidates=total_candidates,
            profile=profile,
            n_indexed_dims=index.r,
        )

    def response_time(
        self,
        n: int,
        d: int,
        *,
        total_candidates: int,
        profile: ShortCircuitProfile,
        n_result_pairs: int,
    ) -> ResponseTime:
        """End-to-end response time from measured join statistics."""
        elem = self._dtype.itemsize
        kernel = cuda_kernel_seconds(
            self.spec, total_candidates, d, profile, GDS_EFFICIENCY
        )
        d2h, store = result_transfer_seconds(self.spec, n_result_pairs)
        return ResponseTime(
            h2d_s=h2d_seconds(self.spec, n, d, elem),
            index_build_s=grid_build_seconds(self.spec, n, self.n_index_dims),
            kernel_s=kernel,
            d2h_s=d2h,
            host_store_s=store,
            overhead_s=LAUNCH_OVERHEAD_S,
        )
