"""Round-toward-zero (RZ) arithmetic matching tensor-core accumulation.

NVIDIA tensor cores do not use round-to-nearest-even for the internal
accumulation of an MMA step.  Fasi, Higham, Mikaitis & Pranesh ("Numerical
behavior of NVIDIA tensor cores", PeerJ CS 2021) established experimentally
that on Volta/Turing/Ampere the five-term sum of one HMMA step
(``c + a0*b0 + a1*b1 + a2*b2 + a3*b3``) is computed with full-precision
products and the final normalization *truncates* (rounds toward zero) to
FP32.  The FaSTED paper matches this behaviour in its CUDA-core squared-norm
precompute ("All summations round towards zero to match TC rounding",
Step 1 of Section 3.1).

This module implements:

* :func:`round_toward_zero_f32` -- correctly-rounded-toward-zero conversion of
  float64 values to float32 (vectorized, branch-free bit manipulation).
* :func:`round_toward_zero_f32_reference` -- the original ``nextafter``-based
  implementation, kept as the oracle the bit-twiddling path is tested against.
* :func:`tc_accumulate_rz` -- one hardware accumulation step: exact multi-term
  sum followed by a single RZ normalization to FP32.
* :func:`rz_sum` / :func:`rz_sum_squares` -- sequential chunked RZ reductions
  used for the ``s_i = sum_k p_{i,k}^2`` precompute.

Three interchangeable implementations back these functions -- an optional
JIT-built C kernel (:mod:`repro.fp.native`, disable with ``REPRO_NATIVE=0``),
the branch-free NumPy path here, and the ``nextafter`` oracle -- every level
bit-identical to the others; docs/ARCHITECTURE.md ("The RZ fallback chain")
documents how they are selected.

Exactness argument: FP16 inputs convert to FP32 exactly, FP16xFP16 products
are exactly representable in FP32 (22-bit significand product fits in 24
bits), and a sum of <= 2**29 FP32 values is exactly representable in float64
(53-bit significand vs 24-bit operands), so carrying the "infinitely precise"
intermediate sum in float64 is *exact* for every chunk size used here.

Performance notes
-----------------
The RZ conversion exploits the sign-magnitude layout of IEEE floats: the
round-to-nearest float32 either equals the RZ result or overshoots it by
exactly one ulp, and stepping one ulp toward zero is a *decrement of the raw
float32 bit pattern* (valid for normals, subnormals, and inf -> FLT_MAX
alike).  Subtracting the boolean overshoot mask from the ``uint32`` view
therefore replaces the old ``np.nextafter``/``np.where`` branch with a single
branch-free integer op -- the dominant cost of the seed implementation.

The chunked reductions additionally avoid per-chunk float32 round trips
whenever the data allows: for values whose running sums stay inside the
float32 *normal* range (the sum-of-squares case by construction), RZ to
float32 of a float64 intermediate is plain mantissa truncation, i.e. clearing
the low 29 bits of the float64 view -- the accumulator never has to leave
float64, and one ``bitwise_and`` per chunk replaces the whole convert /
compare / correct sequence.  All chunk sums are precomputed up front in a
few strided vectorized adds (preserving the seed's per-chunk reduction
order) instead of one slice-sum per chunk.
"""

from __future__ import annotations

import numpy as np

#: Number of k-terms accumulated per hardware HMMA step (k=4 for FP16-32).
HMMA_STEP_K = 4

#: float64 has 52 explicit mantissa bits, float32 has 23: truncating a
#: float64 value to the float32 grid clears the low 29 bits -- valid while
#: the value is zero, inf, nan, or inside the float32 *normal* exponent
#: range (subnormal float32 results need coarser truncation).
_TRUNC_MASK = np.uint64(0xFFFF_FFFF_E000_0000)

#: Smallest positive normal float32 (2**-126): below this, mantissa-mask
#: truncation of the float64 view is no longer the float32 RZ result.
_F32_MIN_NORMAL = float(np.finfo(np.float32).tiny)

#: 2**128: float64 values at or above this exceed the float32 exponent
#: range even after truncation.
_F32_SUP = float(2.0**128)


def round_toward_zero_f32_reference(x: np.ndarray | float) -> np.ndarray:
    """Reference RZ conversion via ``nextafter`` (the oracle used in tests).

    Semantically identical to :func:`round_toward_zero_f32`; kept because its
    correctness is obvious from the IEEE-754 definitions: round to nearest,
    then step one ulp toward zero whenever the nearest rounding overshot the
    true magnitude.
    """
    x64 = np.asarray(x, dtype=np.float64)
    with np.errstate(over="ignore"):
        f32 = x64.astype(np.float32)
    overshoot = np.abs(f32.astype(np.float64)) > np.abs(x64)
    if np.any(overshoot):
        pulled = np.nextafter(f32, np.float32(0.0))
        f32 = np.where(overshoot, pulled, f32)
    return f32


def round_toward_zero_f32(x: np.ndarray | float) -> np.ndarray:
    """Round float64 value(s) to float32 using round-toward-zero.

    NumPy's ``astype(float32)`` rounds to nearest-even; hardware RZ never
    increases magnitude.  The nearest rounding either equals the RZ result
    or overshoots it by exactly one ulp, and one ulp toward zero is a raw
    bit-pattern decrement (IEEE floats are sign-magnitude ordered), so the
    correction is ``bits -= overshoot`` -- branch-free and allocation-light,
    with no ``nextafter`` libm call.  ``inf - 1`` in bit space is FLT_MAX,
    which is exactly the RZ result for finite values beyond the float32
    range; NaN never registers as overshooting.

    Parameters
    ----------
    x:
        Scalar or array of float64 values (exact intermediate sums).

    Returns
    -------
    numpy.ndarray
        float32 array: the representable value of largest magnitude that does
        not exceed ``|x|`` (i.e. truncation of the significand).
    """
    x64 = np.asarray(x, dtype=np.float64)
    with np.errstate(over="ignore"):
        f32 = x64.astype(np.float32)
    # Comparing in float64 is exact because every float32 is exactly
    # representable in float64.
    overshoot = np.abs(f32.astype(np.float64)) > np.abs(x64)
    bits = f32.view(np.uint32)
    np.subtract(bits, overshoot, out=bits, casting="unsafe")
    return f32


def tc_accumulate_rz(c: np.ndarray, products: np.ndarray) -> np.ndarray:
    """One tensor-core accumulation step: ``RZ_f32(c + sum(products))``.

    ``products`` holds the exact FP32 products of one HMMA step along its
    last axis; the sum is carried exactly in float64 and truncated once, as
    the hardware does (Fasi et al., 2021).

    Parameters
    ----------
    c:
        FP32 accumulator fragment, any shape ``S``.
    products:
        Array of shape ``S + (k,)`` with the exact products of this step.

    Returns
    -------
    numpy.ndarray
        Updated FP32 accumulator, shape ``S``.
    """
    exact = c.astype(np.float64) + products.astype(np.float64).sum(axis=-1)
    return round_toward_zero_f32(exact)


def _chunk_sums(v: np.ndarray, step: int) -> np.ndarray:
    """Exact float64 chunk sums, chunk-major: ``out[t] = v[..., t*step:(t+1)*step].sum``.

    A ragged tail chunk is summed at its true length: np.sum's reduction
    tree depends on the axis length (sequential below 8 elements, 8-way
    pairwise above), so padding the tail to ``step`` would change the
    association of inexact sums and break bit-identity with the seed's
    per-chunk slice sums.  Full chunks reduce over a length-``step`` axis
    exactly as the seed's slices do.  (einsum is avoided throughout for the
    same reason -- its multi-accumulator reduction reorders inexact sums,
    and even FP16 squares can span more than 53 bits within one chunk.)
    """
    n = v.shape[-1]
    n_chunks = -(-n // step)
    full = (n // step) * step
    with np.errstate(invalid="ignore", over="ignore"):
        if step < 8 and full:
            # Sequential-order fast path: np.sum over an axis shorter than
            # 8 accumulates terms in ascending order, which is exactly a
            # chain of in-place adds over the strided term slices -- one
            # vectorized add per term instead of a slow tiny-axis reduce.
            body = v[..., 0:full:step].astype(np.float64, copy=True)
            for t in range(1, step):
                np.add(body, v[..., t:full:step], out=body)
        elif full:
            body = v[..., :full].reshape(v.shape[:-1] + (n // step, step)).sum(axis=-1)
        else:
            body = np.zeros(v.shape[:-1] + (0,), dtype=np.float64)
        if full != n:
            tail = v[..., full:].sum(axis=-1)
            body = np.concatenate([body, tail[..., None]], axis=-1)
    assert body.shape[-1] == n_chunks
    return np.ascontiguousarray(np.moveaxis(body, -1, 0))


def _masked_reduce_safe(chunk_sums: np.ndarray) -> bool:
    """True when mantissa-mask truncation is exact for this reduction.

    Sufficient conditions: every chunk sum is non-negative (so running sums
    never cancel back into the float32 subnormal range) and every nonzero
    chunk sum is at least FLT_MIN_NORMAL, with the total staying below
    2**128.  Then each partial sum is 0, inf, nan-free and inside the
    float32 normal range, where RZ == clear-low-29-bits of the float64 view.
    """
    lo = chunk_sums.min()
    if not lo >= 0.0:  # also rejects NaN
        return False
    if not np.all((chunk_sums >= _F32_MIN_NORMAL) | (chunk_sums == 0.0)):
        return False
    with np.errstate(over="ignore", invalid="ignore"):
        total = chunk_sums.sum(axis=0).max()
    # Monotone non-negative prefixes are bounded by the total, so a finite
    # total below 2**128 keeps every partial sum in truncation-safe range.
    # (An infinite total could hide finite prefixes beyond 2**128, where
    # the RZ result is FLT_MAX, not a masked float64 -- fall back.)
    return bool(np.isfinite(total)) and total < _F32_SUP


def _rz_reduce(chunk_sums: np.ndarray, *, assume_safe: bool = False) -> np.ndarray:
    """Sequential RZ reduction over chunk-major exact float64 chunk sums.

    ``assume_safe=True`` skips the :func:`_masked_reduce_safe` scan for
    callers that guarantee its preconditions structurally (sums of squares
    of FP16 values are 0, +inf, or >= 2**-48, and bounded by d * 65504**2).
    """
    n_chunks = chunk_sums.shape[0]
    shape = chunk_sums.shape[1:]
    if chunk_sums.size == 0:
        # Zero-size batch (e.g. an empty leading dimension): nothing to
        # reduce, and the safety scan below cannot run on empty arrays.
        return np.zeros(shape, dtype=np.float32)
    if assume_safe or _masked_reduce_safe(chunk_sums):
        # Truncation-by-masking: the accumulator lives in float64 and every
        # RZ normalization is one bitwise_and clearing the low 29 mantissa
        # bits (exact for 0 / inf / nan / normal-range values, which the
        # guard established).  Two ufunc calls per chunk, no casts.
        acc = np.zeros(shape, dtype=np.float64)
        bits = acc.view(np.uint64)
        for t in range(n_chunks):
            np.add(acc, chunk_sums[t], out=acc)
            np.bitwise_and(bits, _TRUNC_MASK, out=bits)
        return acc.astype(np.float32)
    # General path: float32 accumulator with the branch-free decrement
    # correction of round_toward_zero_f32, using preallocated scratch.
    f32 = np.zeros(shape, dtype=np.float32)
    bits = f32.view(np.uint32)
    acc64 = np.empty(shape, dtype=np.float64)
    mag64 = np.empty(shape, dtype=np.float64)
    over = np.empty(shape, dtype=bool)
    with np.errstate(over="ignore", invalid="ignore"):
        for t in range(n_chunks):
            np.add(f32, chunk_sums[t], out=acc64)  # exact: f32 widens exactly
            np.copyto(f32, acc64, casting="unsafe")  # round to nearest
            np.copyto(mag64, f32, casting="unsafe")  # back to f64, exact
            np.abs(mag64, out=mag64)
            np.abs(acc64, out=acc64)
            np.greater(mag64, acc64, out=over)
            np.subtract(bits, over, out=bits, casting="unsafe")
    return f32


def rz_sum(values: np.ndarray, axis: int = -1, step: int = HMMA_STEP_K) -> np.ndarray:
    """Chunked sequential sum with RZ normalization after every chunk.

    Models a reduction performed with tensor-core rounding semantics: the
    running FP32 accumulator is truncated after each ``step``-term group.
    For non-negative inputs the result never exceeds the exact sum (each
    truncation only reduces magnitude) -- a property verified by the test
    suite.

    The chunk sums are precomputed in one vectorized pass and the sequential
    truncation chain runs in two ufunc calls per chunk (see the module
    docstring); results are bit-identical to the one-chunk-at-a-time seed
    implementation for every input.  When the native kernel is available
    (:mod:`repro.fp.native`), the whole reduction runs as one fused C pass
    instead -- the C side verifies the masked-truncation preconditions per
    chunk sum and bails back to this NumPy path (bit-identically, pinned
    by tests/test_fp_rounding.py) whenever an input leaves the safe range.

    Parameters
    ----------
    values:
        Input array; the reduction runs along ``axis``.
    axis:
        Axis to reduce.
    step:
        Number of terms folded in per RZ normalization (hardware uses 4).

    Returns
    -------
    numpy.ndarray
        float32 array with ``axis`` removed.
    """
    v = np.moveaxis(np.asarray(values, dtype=np.float64), axis, -1)
    if v.shape[-1] == 0:
        return np.zeros(v.shape[:-1], dtype=np.float32)
    from repro.fp.native import rz_sum_native

    native = rz_sum_native(v, step)
    if native is not None:
        return native
    return _rz_reduce(_chunk_sums(v, step))


def rz_sum_squares(points: np.ndarray, step: int = HMMA_STEP_K) -> np.ndarray:
    """Squared Euclidean norms ``s_i = sum_k p_{i,k}^2`` with RZ rounding.

    This is Step 1 of the FaSTED pipeline: computed on CUDA cores from the
    FP16-quantized coordinates, rounding toward zero to match the tensor-core
    rounding of the cross-term GEMM so the recombination
    ``dist^2 = s_i + s_j - 2 a_ij`` does not introduce a systematic bias.

    The whole pipeline is vectorized: quantization widens FP16 -> float64
    exactly, squares are exact elementwise, chunk sums run in the seed's
    sequential term order (one strided add per term -- squares of mixed
    magnitudes can span more than 53 bits, so reduction *order* matters for
    bit-identity), and the RZ chain runs on the always-safe mantissa-mask
    path (a nonzero square of an FP16 value is at least 2**-48, far above
    the float32 subnormal boundary, and the total cannot reach 2**128).

    Parameters
    ----------
    points:
        ``(n, d)`` array; will be quantized through FP16 before squaring.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` float32 array of squared norms.
    """
    from repro.fp.fp16 import to_fp16

    points = np.asarray(points)
    if points.ndim != 2:
        # Rank-agnostic fallback (single points, batched stacks): reduce
        # over the last axis exactly like the (n, d) hot path.
        q = to_fp16(points).astype(np.float64)
        return rz_sum(q * q, axis=-1, step=step)
    from repro.fp.native import rz_sum_squares_native

    native = rz_sum_squares_native(points, step)
    if native is not None:
        return native

    q = to_fp16(points).astype(np.float64)  # exact widening of the FP16 grid
    n, d = q.shape
    if d == 0 or n == 0:
        return np.zeros(n, dtype=np.float32)
    with np.errstate(invalid="ignore"):
        chunk_sums = _chunk_sums(q * q, step)  # squares exact elementwise
    # Squares never cancel, so a NaN in the input is the only way a chunk
    # sum goes NaN; inf coordinates square to +inf, which the masked path
    # truncates exactly.  One cheap reduce decides instead of a full scan.
    safe = not bool(np.isnan(chunk_sums.max()))
    return _rz_reduce(chunk_sums, assume_safe=safe)
