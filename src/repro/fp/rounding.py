"""Round-toward-zero (RZ) arithmetic matching tensor-core accumulation.

NVIDIA tensor cores do not use round-to-nearest-even for the internal
accumulation of an MMA step.  Fasi, Higham, Mikaitis & Pranesh ("Numerical
behavior of NVIDIA tensor cores", PeerJ CS 2021) established experimentally
that on Volta/Turing/Ampere the five-term sum of one HMMA step
(``c + a0*b0 + a1*b1 + a2*b2 + a3*b3``) is computed with full-precision
products and the final normalization *truncates* (rounds toward zero) to
FP32.  The FaSTED paper matches this behaviour in its CUDA-core squared-norm
precompute ("All summations round towards zero to match TC rounding",
Step 1 of Section 3.1).

This module implements:

* :func:`round_toward_zero_f32` -- correctly-rounded-toward-zero conversion of
  float64 values to float32 (vectorized).
* :func:`tc_accumulate_rz` -- one hardware accumulation step: exact multi-term
  sum followed by a single RZ normalization to FP32.
* :func:`rz_sum` / :func:`rz_sum_squares` -- sequential chunked RZ reductions
  used for the ``s_i = sum_k p_{i,k}^2`` precompute.

Exactness argument: FP16 inputs convert to FP32 exactly, FP16xFP16 products
are exactly representable in FP32 (22-bit significand product fits in 24
bits), and a sum of <= 2**29 FP32 values is exactly representable in float64
(53-bit significand vs 24-bit operands), so carrying the "infinitely precise"
intermediate sum in float64 is *exact* for every chunk size used here.
"""

from __future__ import annotations

import numpy as np

#: Number of k-terms accumulated per hardware HMMA step (k=4 for FP16-32).
HMMA_STEP_K = 4


def round_toward_zero_f32(x: np.ndarray | float) -> np.ndarray:
    """Round float64 value(s) to float32 using round-toward-zero.

    NumPy's ``astype(float32)`` rounds to nearest-even; hardware RZ never
    increases magnitude.  We first round to nearest and then step one ulp
    toward zero whenever the nearest-rounding overshot the true magnitude.

    Parameters
    ----------
    x:
        Scalar or array of float64 values (exact intermediate sums).

    Returns
    -------
    numpy.ndarray
        float32 array: the representable value of largest magnitude that does
        not exceed ``|x|`` (i.e. truncation of the significand).
    """
    x64 = np.asarray(x, dtype=np.float64)
    f32 = x64.astype(np.float32)
    # Where |f32| > |x| the nearest rounding moved away from zero: pull back
    # one ulp toward zero. Comparing in float64 is exact because every float32
    # is exactly representable in float64.
    overshoot = np.abs(f32.astype(np.float64)) > np.abs(x64)
    if np.any(overshoot):
        pulled = np.nextafter(f32, np.float32(0.0))
        f32 = np.where(overshoot, pulled, f32)
    return f32


def tc_accumulate_rz(c: np.ndarray, products: np.ndarray) -> np.ndarray:
    """One tensor-core accumulation step: ``RZ_f32(c + sum(products))``.

    ``products`` holds the exact FP32 products of one HMMA step along its
    last axis; the sum is carried exactly in float64 and truncated once, as
    the hardware does (Fasi et al., 2021).

    Parameters
    ----------
    c:
        FP32 accumulator fragment, any shape ``S``.
    products:
        Array of shape ``S + (k,)`` with the exact products of this step.

    Returns
    -------
    numpy.ndarray
        Updated FP32 accumulator, shape ``S``.
    """
    exact = c.astype(np.float64) + products.astype(np.float64).sum(axis=-1)
    return round_toward_zero_f32(exact)


def rz_sum(values: np.ndarray, axis: int = -1, step: int = HMMA_STEP_K) -> np.ndarray:
    """Chunked sequential sum with RZ normalization after every chunk.

    Models a reduction performed with tensor-core rounding semantics: the
    running FP32 accumulator is truncated after each ``step``-term group.
    For non-negative inputs the result never exceeds the exact sum (each
    truncation only reduces magnitude) -- a property verified by the test
    suite.

    Parameters
    ----------
    values:
        Input array; the reduction runs along ``axis``.
    axis:
        Axis to reduce.
    step:
        Number of terms folded in per RZ normalization (hardware uses 4).

    Returns
    -------
    numpy.ndarray
        float32 array with ``axis`` removed.
    """
    v = np.moveaxis(np.asarray(values, dtype=np.float64), axis, -1)
    n = v.shape[-1]
    acc = np.zeros(v.shape[:-1], dtype=np.float32)
    for start in range(0, n, step):
        chunk = v[..., start : start + step].sum(axis=-1)
        acc = round_toward_zero_f32(acc.astype(np.float64) + chunk)
    return acc


def rz_sum_squares(points: np.ndarray, step: int = HMMA_STEP_K) -> np.ndarray:
    """Squared Euclidean norms ``s_i = sum_k p_{i,k}^2`` with RZ rounding.

    This is Step 1 of the FaSTED pipeline: computed on CUDA cores from the
    FP16-quantized coordinates, rounding toward zero to match the tensor-core
    rounding of the cross-term GEMM so the recombination
    ``dist^2 = s_i + s_j - 2 a_ij`` does not introduce a systematic bias.

    Parameters
    ----------
    points:
        ``(n, d)`` array; will be quantized through FP16 before squaring.

    Returns
    -------
    numpy.ndarray
        ``(n,)`` float32 array of squared norms.
    """
    from repro.fp.fp16 import quantize_fp16

    q = quantize_fp16(points).astype(np.float64)
    return rz_sum(q * q, axis=-1, step=step)
