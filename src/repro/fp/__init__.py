"""Mixed-precision floating-point arithmetic for tensor-core simulation.

This package provides the numerical semantics FaSTED relies on:

* :mod:`repro.fp.fp16` -- IEEE binary16 quantization of input coordinates,
  overflow/dynamic-range diagnostics.
* :mod:`repro.fp.rounding` -- round-toward-zero (RZ) reductions matching the
  behaviour of NVIDIA tensor-core internal accumulation (Fasi et al., 2021),
  used both for the squared-norm precompute (paper Step 1) and for the
  fragment-exact MMA path.
* :mod:`repro.fp.mma` -- fragment-level matrix-multiply-accumulate: the
  ``m16n8k16`` FP16-32 instruction used by FaSTED, the ``m8n8k4`` FP64
  instruction used by TED-Join, and a fast vectorized FP16-32 GEMM used for
  large functional runs.

All functions are pure and operate on NumPy arrays.
"""

from repro.fp.fp16 import (
    FP16_MAX,
    dynamic_range_report,
    fp16_overflow_mask,
    quantize_fp16,
    to_fp16,
)
from repro.fp.mma import (
    gemm_fp16_32,
    mma_m8n8k4_f64,
    mma_m16n8k16,
)
from repro.fp.rounding import (
    round_toward_zero_f32,
    rz_sum,
    rz_sum_squares,
    tc_accumulate_rz,
)

__all__ = [
    "FP16_MAX",
    "dynamic_range_report",
    "fp16_overflow_mask",
    "quantize_fp16",
    "to_fp16",
    "gemm_fp16_32",
    "mma_m8n8k4_f64",
    "mma_m16n8k16",
    "round_toward_zero_f32",
    "rz_sum",
    "rz_sum_squares",
    "tc_accumulate_rz",
]
