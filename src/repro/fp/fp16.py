"""IEEE binary16 quantization helpers.

FaSTED stores input coordinates in FP16 (half precision) and accumulates in
FP32.  The conversion of an FP32/FP64 coordinate to FP16 is where almost all
of the accuracy loss of the algorithm originates (paper Section 4.6), so this
module centralizes the conversion and provides diagnostics for datasets whose
values fall outside the FP16 dynamic range (|x| > 65504) -- the situation the
paper's conclusion flags as requiring input scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Largest finite value representable in IEEE binary16.
FP16_MAX = 65504.0

#: Smallest positive *normal* binary16 value; values below this (but above
#: ~6e-8) are representable only as subnormals with reduced precision.
FP16_MIN_NORMAL = 6.103515625e-05


def to_fp16(x: np.ndarray) -> np.ndarray:
    """Quantize an array to IEEE binary16 (round-to-nearest-even).

    Values with magnitude above :data:`FP16_MAX` become ``inf`` -- exactly the
    hardware behaviour of storing out-of-range data in half precision.  Use
    :func:`fp16_overflow_mask` to detect this before running a search.

    Parameters
    ----------
    x:
        Input array of any floating dtype.

    Returns
    -------
    numpy.ndarray
        Array with dtype ``float16`` and the same shape as ``x``.
    """
    x = np.asarray(x)
    with np.errstate(over="ignore"):
        return x.astype(np.float16)


def quantize_fp16(x: np.ndarray) -> np.ndarray:
    """Round-trip an array through FP16 and return it as ``float32``.

    This is the value tensor cores actually *see*: coordinates are stored in
    half precision but all products/sums are carried out in single precision,
    so ``quantize_fp16(x)`` is the exact operand of the simulated MMA.
    """
    return to_fp16(x).astype(np.float32)


def fp16_overflow_mask(x: np.ndarray) -> np.ndarray:
    """Boolean mask of elements that overflow (to ``inf``) when cast to FP16."""
    x = np.asarray(x, dtype=np.float64)
    return np.abs(x) > FP16_MAX


@dataclass(frozen=True)
class DynamicRangeReport:
    """Summary of how well a dataset fits the FP16 dynamic range.

    Attributes
    ----------
    n_overflow:
        Number of coordinates whose magnitude exceeds :data:`FP16_MAX`.
    n_subnormal:
        Number of nonzero coordinates that land in the subnormal range where
        relative precision degrades.
    max_abs:
        Largest coordinate magnitude in the dataset.
    max_rel_error:
        Largest relative quantization error over nonzero, non-overflowing
        coordinates.  For well-scaled data this is bounded by the FP16 unit
        roundoff, ``2**-11 ~= 4.9e-4``.
    recommended_scale:
        Multiplicative factor that would map ``max_abs`` to half of
        :data:`FP16_MAX`; ``1.0`` when the data already fits.
    """

    n_overflow: int
    n_subnormal: int
    max_abs: float
    max_rel_error: float
    recommended_scale: float

    @property
    def fits(self) -> bool:
        """True when no coordinate overflows FP16."""
        return self.n_overflow == 0


def dynamic_range_report(x: np.ndarray) -> DynamicRangeReport:
    """Analyze a dataset's suitability for FP16 storage.

    The paper (Section 5) notes that none of its datasets were normalized to
    the FP16 range and accuracy was still >= 99.946%; this report lets a user
    check whether their data is similarly benign and, if not, how to scale it.
    """
    x = np.asarray(x, dtype=np.float64)
    flat = x.ravel()
    abs_x = np.abs(flat)
    overflow = abs_x > FP16_MAX
    nonzero = abs_x > 0.0
    subnormal = nonzero & (abs_x < FP16_MIN_NORMAL)
    ok = nonzero & ~overflow
    if np.any(ok):
        q = quantize_fp16(flat[ok]).astype(np.float64)
        rel = np.abs(q - flat[ok]) / np.abs(flat[ok])
        max_rel = float(rel.max())
    else:
        max_rel = 0.0
    max_abs = float(abs_x.max()) if flat.size else 0.0
    if max_abs > 0.0:
        scale = (FP16_MAX / 2.0) / max_abs
        scale = min(scale, 1.0) if max_abs > FP16_MAX else 1.0
    else:
        scale = 1.0
    return DynamicRangeReport(
        n_overflow=int(overflow.sum()),
        n_subnormal=int(subnormal.sum()),
        max_abs=max_abs,
        max_rel_error=max_rel,
        recommended_scale=float(scale),
    )
