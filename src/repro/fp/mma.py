"""Fragment-level matrix-multiply-accumulate (MMA) simulation.

Two tensor-core instructions are modeled:

* ``mma.sync.aligned.m16n8k16.f32.f16.f16.f32`` -- the FP16-32 instruction
  FaSTED is built on (paper Listing 2): ``A`` is a 16x16 FP16 fragment of
  point coordinates, ``B`` a 16x8 FP16 fragment of (transposed) query
  coordinates, and ``C``/``D`` 16x8 FP32 accumulators.
* ``wmma m8n8k4`` FP64 -- the double-precision building block of TED-Join
  (Gallet & Gowanlock, 2022).

Fragment-exact mode applies the per-step round-toward-zero accumulation of
:mod:`repro.fp.rounding`; the fast path uses a single FP32 GEMM, which matches
the exact path to within one or two ulps of the final accumulator and is what
large functional runs use (the difference is far below the FP16 quantization
error that dominates the accuracy experiments).
"""

from __future__ import annotations

import numpy as np

from repro.fp.rounding import HMMA_STEP_K, tc_accumulate_rz

#: (m, n, k) shape of the FP16-32 PTX mma instruction used by FaSTED.
MMA_SHAPE_FP16 = (16, 8, 16)

#: (m, n, k) shape of the FP64 WMMA fragment used by TED-Join.
MMA_SHAPE_FP64 = (8, 8, 4)


def mma_m16n8k16(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
    *,
    exact_rz: bool = True,
) -> np.ndarray:
    """Compute ``D = A x B + C`` for one 16x8x16 FP16-32 fragment.

    Parameters
    ----------
    a:
        ``(16, 16)`` FP16 fragment (rows of points x 16-dim k-slice).
    b:
        ``(16, 8)`` FP16 fragment (16-dim k-slice x columns of query points).
        Note the PTX instruction takes B column-major ("row.col"); here the
        mathematical orientation is explicit instead.
    c:
        ``(16, 8)`` FP32 accumulator; zeros when omitted.
    exact_rz:
        When True, reproduce the hardware's 4-term round-toward-zero
        accumulation sequence exactly; when False, use a single FP32 GEMM.

    Returns
    -------
    numpy.ndarray
        ``(16, 8)`` float32 fragment ``D``.
    """
    m, n, k = MMA_SHAPE_FP16
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != (m, k):
        raise ValueError(f"A fragment must be {(m, k)}, got {a.shape}")
    if b.shape != (k, n):
        raise ValueError(f"B fragment must be {(k, n)}, got {b.shape}")
    a32 = a.astype(np.float16).astype(np.float32)
    b32 = b.astype(np.float16).astype(np.float32)
    if c is None:
        c = np.zeros((m, n), dtype=np.float32)
    d = np.asarray(c, dtype=np.float32)
    if not exact_rz:
        return d + a32 @ b32
    # Hardware: k=16 is executed as four sequential k=4 HMMA steps, each
    # accumulating 4 exact products plus the running value with one RZ.
    # The per-step sum order is kept exactly as the reference accumulation
    # (ascending k within the step): products of mixed magnitudes can span
    # more than 53 bits, so reduction order matters for bit-identity.
    for start in range(0, k, HMMA_STEP_K):
        # products[i, j, t] = a[i, start+t] * b[start+t, j], exact in FP32.
        prods = (
            a32[:, start : start + HMMA_STEP_K, None]
            * b32[None, start : start + HMMA_STEP_K, :]
        ).transpose(0, 2, 1)
        d = tc_accumulate_rz(d, prods)
    return d


def mma_m8n8k4_f64(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray | None = None,
) -> np.ndarray:
    """Compute ``D = A x B + C`` for one 8x8x4 FP64 WMMA fragment.

    FP64 tensor cores on the A100 produce IEEE-correct fused results, so a
    plain float64 GEMM is bit-faithful here.
    """
    m, n, k = MMA_SHAPE_FP64
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != (m, k):
        raise ValueError(f"A fragment must be {(m, k)}, got {a.shape}")
    if b.shape != (k, n):
        raise ValueError(f"B fragment must be {(k, n)}, got {b.shape}")
    if c is None:
        c = np.zeros((m, n), dtype=np.float64)
    return np.asarray(c, dtype=np.float64) + a @ b


def gemm_fp16_32(a: np.ndarray, b_t: np.ndarray) -> np.ndarray:
    """Vectorized FP16-32 GEMM fast path: ``A @ B^T`` with FP32 accumulation.

    Operands are quantized through FP16 (the storage format) and multiplied
    in FP32 (the accumulate format).  This is the bulk path used when
    computing full block tiles functionally; per-fragment RZ detail is
    available through :func:`mma_m16n8k16` for validation.

    Parameters
    ----------
    a:
        ``(m, d)`` array of point coordinates.
    b_t:
        ``(n, d)`` array of query-point coordinates (row-major; transposed
        internally, matching the Q^T layout FaSTED stages in shared memory).

    Returns
    -------
    numpy.ndarray
        ``(m, n)`` float32 array of inner products.
    """
    a32 = np.asarray(a).astype(np.float16).astype(np.float32)
    b32 = np.asarray(b_t).astype(np.float16).astype(np.float32)
    return a32 @ b32.T
