/* Native fast path for the FaSTED squared-norm precompute.
 *
 * Implements rz_sum_squares (repro/fp/rounding.py) as one fused pass:
 * FP16-grid quantization, exact per-chunk sums of squares, and the
 * round-toward-zero float32 normalization after every chunk.
 *
 * Bit-exactness contract (validated against the NumPy implementation and
 * the nextafter oracle in tests/test_fp_rounding.py):
 *
 * - quant_f16 returns exactly numpy `x.astype(float16).astype(float64)`:
 *   round-to-nearest-even onto the binary16 grid, computed in the float64
 *   domain so no double rounding can occur.  Normal-range values round via
 *   integer mantissa rounding (carry propagates into the exponent, which
 *   also realizes the 65520 -> inf overflow after the >= 65536 check);
 *   subnormal-range values (|x| < 2^-14) round via the magic-constant
 *   trick: adding 1.5*2^28 forces the FPU to round at the absolute
 *   2^-24 grid spacing of binary16 subnormals.  Requires the default
 *   round-to-nearest FP environment and strict IEEE semantics (never
 *   compile this file with -ffast-math).
 *
 * - The RZ normalization uses the mantissa-mask identity: for values that
 *   are zero, inf, NaN, or inside the float32 normal range, truncating a
 *   float64 toward zero onto the float32 grid is clearing the low 29
 *   mantissa bits.  Sums of squares of binary16 values satisfy this
 *   structurally: a nonzero square is at least 2^-48 (far above the
 *   2^-126 float32 normal boundary) and the total stays far below 2^128.
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

static inline uint64_t d2u(double x) {
    uint64_t u;
    memcpy(&u, &x, sizeof u);
    return u;
}

static inline double u2d(uint64_t u) {
    double x;
    memcpy(&x, &u, sizeof u);
    return x;
}

/* Round a float64 to the binary16 grid (RNE), returned as float64. */
static inline double quant_f16(double x) {
    uint64_t b = d2u(x);
    uint64_t mag = b & 0x7FFFFFFFFFFFFFFFULL;
    if (mag >= 0x7FF0000000000000ULL) /* inf or NaN: unchanged */
        return x;
    if (u2d(mag) < 0x1p-14) { /* binary16 subnormal range */
        const double C = 0x1.8p+28; /* 1.5 * 2^28: ulp(C) == 2^-24 */
        return (x + C) - C;
    }
    /* RNE to a 10-bit significand: add the rounding increment (half ulp,
     * minus one when the kept lsb is even so ties go to even) and clear
     * the 42 discarded mantissa bits; a carry bumps the exponent. */
    uint64_t r = (b + 0x1FFFFFFFFFFULL + ((b >> 42) & 1ULL)) &
                 ~((uint64_t)0x3FFFFFFFFFFULL);
    double q = u2d(r);
    if (fabs(q) >= 65536.0) /* rounded past binary16's largest finite */
        return copysign(INFINITY, x);
    return q;
}

/* out[i] = RZ-chunked sum of squares of the FP16-quantized row i. */
void rz_sum_squares_f16grid(const double *pts, long long n, long long d,
                            long long step, float *out) {
    for (long long i = 0; i < n; i++) {
        const double *row = pts + i * d;
        double acc = 0.0;
        for (long long c = 0; c < d; c += step) {
            long long e = c + step < d ? c + step : d;
            double s = 0.0;
            for (long long t = c; t < e; t++) {
                double q = quant_f16(row[t]);
                s += q * q;
            }
            acc = u2d(d2u(acc + s) & 0xFFFFFFFFE0000000ULL);
        }
        out[i] = (float)acc;
    }
}

/* General rz_sum over raw float64 rows: the masked-truncation loop of
 * repro/fp/rounding.py (_rz_reduce's fast path) fused with the chunk-sum
 * pass.  Chunk sums accumulate in ascending term order, which matches the
 * NumPy _chunk_sums reduction only for step < 8 (the caller enforces it);
 * each chunk's RZ normalization is the low-29-bit mantissa clear, exact
 * while every partial sum is 0 / inf-free / inside the float32 normal
 * range.
 *
 * Unlike sums of squares, arbitrary inputs do not satisfy those
 * preconditions structurally, so they are verified per chunk sum exactly
 * as _masked_reduce_safe does: non-negative (rejects NaN too), zero or at
 * least FLT_MIN_NORMAL (2^-126), and a finite running total below 2^128.
 * Returns 1 with `out` filled when every row is safe; returns 0 -- `out`
 * contents unspecified -- the moment any chunk sum leaves the safe range,
 * and the caller falls back to the NumPy general path (which re-derives
 * the same verdict from the same conditions). */
long long rz_sum_f64(const double *vals, long long n, long long d,
                     long long step, float *out) {
    for (long long i = 0; i < n; i++) {
        const double *row = vals + i * d;
        double acc = 0.0;
        double total = 0.0;
        for (long long c = 0; c < d; c += step) {
            long long e = c + step < d ? c + step : d;
            double s = 0.0;
            for (long long t = c; t < e; t++)
                s += row[t];
            if (!(s >= 0.0)) /* negative or NaN chunk sum */
                return 0;
            if (s != 0.0 && s < 0x1p-126) /* float32 subnormal range */
                return 0;
            total += s;
            acc = u2d(d2u(acc + s) & 0xFFFFFFFFE0000000ULL);
        }
        if (!(total < 0x1p128)) /* overflow past float32 range (or inf) */
            return 0;
        out[i] = (float)acc;
    }
    return 1;
}
