"""Optional native (C) fast path for the RZ squared-norm precompute.

The NumPy implementations of :func:`repro.fp.rounding.rz_sum_squares` and
the general :func:`repro.fp.rounding.rz_sum` are vectorized but still pay
several full-array passes (FP16 cast, widening, chunk sums, truncation
chain).  This module JIT-builds ``_rz_native.c`` -- one fused pass over
the data per kernel -- with whatever C compiler the host has, and exposes
the kernels through :func:`rz_sum_squares_native` and
:func:`rz_sum_native` (the latter additionally bails back to NumPy when
its masked-truncation preconditions fail; see the C header comment).

Design rules:

* **Always optional.**  Any failure (no compiler, sandboxed tmp, odd
  platform) degrades silently to ``None`` and callers fall back to the
  NumPy path.  ``REPRO_NATIVE=0`` disables the build outright.
* **Bit-exact or absent.**  The C kernel implements the same verified bit
  algorithm as the NumPy path (see the header comment in ``_rz_native.c``);
  tests/test_fp_rounding.py cross-checks it against the oracle whenever the
  build succeeds.
* **Cached.**  The shared object lands in a private (0700, ownership
  checked) per-user cache directory, keyed by a hash of the C source and
  the compile environment, so rebuilds only happen when either changes and
  no attacker-controlled path is ever dlopen'ed.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import tempfile
from pathlib import Path

import numpy as np

_SOURCE = Path(__file__).with_name("_rz_native.c")

#: Build/load attempted (the result may be None).
_tried = False
_lib: ctypes.CDLL | None = None


def _cache_dir() -> Path | None:
    """Private per-user build cache; never trust shared world-writable dirs.

    The shared object is later dlopen'ed, so the directory must be owned by
    us and not writable by others -- otherwise another local user could
    plant a library at the predictable path.
    """
    if not hasattr(os, "getuid"):
        # Non-POSIX platform: no meaningful ownership check is possible,
        # so the native path stays off and NumPy serves every call.
        return None
    base = Path(tempfile.gettempdir()) / f"repro-native-{os.getuid()}"
    try:
        base.mkdir(mode=0o700, exist_ok=True)
        st = base.stat()
        if st.st_uid != os.getuid() or (st.st_mode & 0o022):
            return None
    except OSError:
        return None
    return base


def _build() -> ctypes.CDLL | None:
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        return None
    try:
        src = _SOURCE.read_text()
    except OSError:
        return None
    cache = _cache_dir()
    if cache is None:
        return None
    # Key on source AND the compile environment: -march=native objects are
    # not portable across machines sharing a filesystem, and 'x86_64' alone
    # does not distinguish microarchitectures -- fold in the host's CPU
    # identity (/proc/cpuinfo model+flags) and hostname so heterogeneous
    # nodes sharing a tempdir never dlopen each other's builds.
    cpu = f"{platform.machine()}\0{platform.node()}"
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if not line.strip():
                    break  # end of the first processor block
                if line.startswith(("model name", "flags", "Features")):
                    cpu += "\0" + line.strip()
    except OSError:
        pass
    tag = hashlib.sha256(
        f"{src}\0{os.environ.get('CC', 'cc')}\0{cpu}".encode()
    ).hexdigest()[:16]
    so_path = cache / f"rz_native_{tag}.so"
    if not so_path.exists():
        tmp = so_path.with_suffix(f".{os.getpid()}.tmp")
        cmd = [
            os.environ.get("CC", "cc"),
            "-O3",
            "-march=native",
            "-fno-math-errno",
            "-shared",
            "-fPIC",
            str(_SOURCE),
            "-o",
            str(tmp),
            "-lm",
        ]
        try:
            subprocess.run(
                cmd, check=True, capture_output=True, timeout=60
            )
            os.replace(tmp, so_path)  # atomic: concurrent builders agree
        except (OSError, subprocess.SubprocessError):
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return None
    try:
        lib = ctypes.CDLL(str(so_path))
        fn = lib.rz_sum_squares_f16grid
        fn.restype = None
        fn.argtypes = [
            ctypes.POINTER(ctypes.c_double),
            ctypes.c_longlong,
            ctypes.c_longlong,
            ctypes.c_longlong,
            ctypes.POINTER(ctypes.c_float),
        ]
        gen = lib.rz_sum_f64
        gen.restype = ctypes.c_longlong
        gen.argtypes = [
            ctypes.POINTER(ctypes.c_double),
            ctypes.c_longlong,
            ctypes.c_longlong,
            ctypes.c_longlong,
            ctypes.POINTER(ctypes.c_float),
        ]
        return lib
    except (OSError, AttributeError):
        return None


def _get() -> ctypes.CDLL | None:
    global _tried, _lib
    if not _tried:
        _lib = _build()
        _tried = True
    return _lib


def available() -> bool:
    """True when the native kernel built and loaded on this host."""
    return _get() is not None


def rz_sum_squares_native(points: np.ndarray, step: int) -> np.ndarray | None:
    """Fused native ``rz_sum_squares`` or ``None`` when unavailable.

    Accepts any 2-D array; inputs are staged to C-contiguous float64
    (a no-op for the common case).
    """
    lib = _get()
    if lib is None:
        return None
    pts = np.ascontiguousarray(points, dtype=np.float64)
    if pts.ndim != 2 or step < 1 or step >= 8:
        # The C loop sums chunk terms in ascending order, which matches
        # NumPy's reduction only below its 8-term pairwise threshold;
        # longer (non-default) steps stay on the NumPy path.
        return None
    n, d = pts.shape
    out = np.empty(n, dtype=np.float32)
    if n and d:
        lib.rz_sum_squares_f16grid(
            pts.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            n,
            d,
            step,
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_float)),
        )
    elif n:
        out[:] = 0.0
    return out


def rz_sum_native(values: np.ndarray, step: int) -> np.ndarray | None:
    """Fused native general ``rz_sum`` or ``None`` when unavailable.

    ``values`` is the float64 array with the reduction axis last (as
    :func:`repro.fp.rounding.rz_sum` arranges it); leading dimensions are
    flattened for the C pass and restored on the result.  Returns ``None``
    when the kernel is absent, the step is outside the ascending-order
    window (see :func:`rz_sum_squares_native`), or any chunk sum leaves
    the masked-truncation safe range -- the C kernel bails with the exact
    per-chunk conditions of ``_masked_reduce_safe``, and the caller's
    NumPy general path takes over.
    """
    lib = _get()
    if lib is None or step < 1 or step >= 8:
        return None
    vals = np.ascontiguousarray(values, dtype=np.float64)
    if vals.ndim == 0 or vals.shape[-1] == 0:
        return None
    lead_shape = vals.shape[:-1]
    flat = vals.reshape(-1, vals.shape[-1])
    out = np.empty(flat.shape[0], dtype=np.float32)
    if flat.shape[0]:
        ok = lib.rz_sum_f64(
            flat.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            flat.shape[0],
            flat.shape[1],
            step,
            out.ctypes.data_as(ctypes.POINTER(ctypes.c_float)),
        )
        if not ok:
            return None
    return out.reshape(lead_shape)
