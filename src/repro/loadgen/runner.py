"""Config-driven load experiments: factors x repetitions -> run table.

The muBench-style methodology: a config names an experiment, a ``base``
workload, a set of ``factors`` (each a list of levels), and a
``repetitions`` count.  The full factorial of factor levels times
repetitions expands -- deterministically, before anything runs -- into a
**run table**; every run executes one
:class:`~repro.loadgen.generator.WorkloadConfig` and emits one flat
summary row (JSON and optionally CSV), and the report carries the
saturation knee whenever ``target_rps`` was swept.

Config files are TOML (stdlib :mod:`tomllib`, Python >= 3.11) or JSON
-- same schema either way::

    name = "rps-sweep"
    repetitions = 2

    [base]
    mode = "open"
    duration_s = 2.0
    batch_size = 8

    [factors]
    target_rps = [50, 100, 200, 400]

Repetition ``r`` of a cell runs with ``seed = base seed + r`` so
repeats are independent draws of the same workload, not bit-identical
replays.
"""

from __future__ import annotations

import csv
import itertools
import json
from pathlib import Path

try:  # Python >= 3.11; JSON remains the fallback config format.
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - py310 fallback
    tomllib = None

from repro.loadgen.generator import (
    WORKLOAD_KEYS,
    WorkloadConfig,
    run_against_server,
    run_against_service,
    saturation_knee,
)

__all__ = ["load_config", "expand_run_table", "run_experiment"]


def load_config(path) -> dict:
    """Read a TOML (``.toml``) or JSON experiment config."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".toml":
        if tomllib is None:
            raise RuntimeError(
                "TOML configs need the stdlib tomllib (Python >= 3.11); "
                "use a JSON config instead"
            )
        return tomllib.loads(text)
    return json.loads(text)


def expand_run_table(config: dict) -> list[dict]:
    """Expand ``base`` x ``factors`` x ``repetitions`` into run rows.

    Returns ``[{run_id, rep, factors: {...}, params: {...}}, ...]`` in
    deterministic order: factor names sorted, levels in declared order,
    repetitions innermost.  ``params`` is the complete
    :class:`WorkloadConfig` keyword set for the run (validated here, so
    a typo'd config fails before anything executes).
    """
    base = dict(config.get("base", {}))
    factors = {str(k): list(v) for k, v in dict(config.get("factors", {})).items()}
    reps = int(config.get("repetitions", 1))
    if reps < 1:
        raise ValueError("repetitions must be >= 1")
    for name, levels in factors.items():
        if not levels:
            raise ValueError(f"factor {name!r} has no levels")
    unknown = (set(base) | set(factors)) - WORKLOAD_KEYS
    if unknown:
        raise ValueError(
            f"unknown workload keys {sorted(unknown)}; valid keys are "
            f"{sorted(WORKLOAD_KEYS)}"
        )
    names = sorted(factors)
    runs: list[dict] = []
    for combo in itertools.product(*(factors[n] for n in names)):
        cell = dict(zip(names, combo))
        for rep in range(reps):
            params = dict(base)
            params.update(cell)
            params["seed"] = int(params.get("seed", 0)) + rep
            WorkloadConfig(**params)  # validate levels eagerly
            runs.append(
                {
                    "run_id": len(runs),
                    "rep": rep,
                    "factors": dict(cell),
                    "params": params,
                }
            )
    return runs


def run_experiment(
    config: dict,
    *,
    index,
    service=None,
    server: "tuple[str, int] | None" = None,
    index_name: str = "default",
    driver: str = "thread",
    out_json=None,
    out_csv=None,
    progress=None,
) -> dict:
    """Execute every run in the expanded table; return the report dict.

    ``index`` is a persisted index directory.  By default every run goes
    through one shared in-process
    :class:`~repro.service.server.QueryService` (so the index loads
    once); pass ``server=(host, port)`` to drive a live ``serve``
    endpoint instead, or ``service=`` to reuse an existing one.
    ``driver="async"`` (HTTP runs only) swaps the worker threads for
    the asyncio open-loop driver.  ``progress(row)`` is called after
    each run.  ``out_json`` / ``out_csv`` write the full report / the
    flat rows.
    """
    from repro.service.server import QueryService

    runs = expand_run_table(config)
    rows: list[dict] = []
    own_service = service is None and server is None
    svc = QueryService() if own_service else service
    try:
        for run in runs:
            workload = WorkloadConfig(**run["params"])
            if server is not None:
                result = run_against_server(
                    index, server[0], server[1], workload,
                    index_name=index_name, driver=driver,
                )
            else:
                result = run_against_service(index, workload, service=svc)
            row = {"run_id": run["run_id"], "rep": run["rep"]}
            row.update(run["factors"])
            row.update(result.summary())
            rows.append(row)
            if progress is not None:
                progress(row)
    finally:
        if own_service:
            svc.stop()
    report: dict = {
        "name": str(config.get("name", "loadtest")),
        "repetitions": int(config.get("repetitions", 1)),
        "factors": {k: list(v) for k, v in dict(config.get("factors", {})).items()},
        "n_runs": len(rows),
        "rows": rows,
    }
    if "target_rps" in report["factors"]:
        report["saturation_knee_rps"] = saturation_knee(rows)
    if out_json is not None:
        Path(out_json).write_text(json.dumps(report, indent=2) + "\n")
    if out_csv is not None and rows:
        with open(out_csv, "w", newline="") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
    return report
