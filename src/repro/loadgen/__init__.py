"""Load-test harness for the query-serving subsystem.

:mod:`repro.loadgen.generator` drives an in-process
:class:`~repro.service.server.QueryService` or a live ``serve``
endpoint with open-loop (target arrival rate) or closed-loop (fixed
concurrency) workloads -- configurable query mix, Zipf cell skew, and
streaming latency histograms with error/429/504 breakdowns.
:mod:`repro.loadgen.runner` expands a TOML/JSON config of factors x
repetitions into a run table and emits one summary row per run -- the
flow behind ``python -m repro loadtest`` and
``benchmarks/bench_service_load.py`` (``BENCH_service.json``).
"""

from repro.loadgen.generator import (
    HttpTarget,
    InProcessTarget,
    LoadResult,
    QuerySampler,
    RequestRecord,
    WorkloadConfig,
    run_against_server,
    run_against_service,
    run_load,
    run_load_async,
    saturation_knee,
)
from repro.loadgen.runner import (
    expand_run_table,
    load_config,
    run_experiment,
)

__all__ = [
    "WorkloadConfig",
    "QuerySampler",
    "RequestRecord",
    "LoadResult",
    "InProcessTarget",
    "HttpTarget",
    "run_load",
    "run_load_async",
    "run_against_service",
    "run_against_server",
    "saturation_knee",
    "load_config",
    "expand_run_table",
    "run_experiment",
]
