"""Open- and closed-loop load generation against the query service.

Two loop disciplines (the distinction matters -- they measure different
things):

* **Closed loop** (``mode="closed"``): ``concurrency`` workers each
  issue one request, wait for its answer, and immediately issue the
  next.  Offered load adapts to service speed, so a slow service simply
  sees fewer requests -- the right discipline for "how fast can N
  clients go" and for deterministic tests (with one worker, a seeded
  RNG, and an injected clock the request sequence is a pure function of
  the config).
* **Open loop** (``mode="open"``): arrivals follow a fixed schedule
  (``target_rps``), independent of completions.  Latency is measured
  from the *scheduled* arrival instant, so queueing delay under
  saturation is charged to the request (no coordinated omission).  The
  right discipline for "what happens at X RPS" and for finding the
  saturation knee of an RPS sweep (:func:`saturation_knee`).

The query mix (range/kNN ratio, batch size, eps/k) and the key-skew
come from :class:`QuerySampler`: with ``zipf_s > 0`` on a grid-backed
index, query points are drawn Zipf-skewed over grid-*cell* popularity
ranks, so a skewed run hammers a few hot cells -- exactly the access
pattern the engine's hot-cell candidate LRU and the service's admission
control exist for.  Per-request outcomes stream into a
:class:`~repro.service.metrics.LogHistogram` (HDR-style log buckets;
p50/p95/p99 from bucket counts) plus a status breakdown
(``ok``/``429``/``503``/``504``/``error``/``dropped``) -- no unbounded
per-request retention unless records are requested.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from dataclasses import dataclass, field, fields

import numpy as np

from repro import trace as trace_mod
from repro.service.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    LogHistogram,
    parse_prometheus_text,
)
from repro.service.server import (
    DeadlineExceeded,
    QueryService,
    ServiceOverloaded,
    ServiceShuttingDown,
)

#: Status labels a request can resolve to.  ``dropped`` is generator-side
#: shedding: an open-loop arrival so far behind schedule that issuing it
#: would only measure the generator's own backlog.
STATUSES = ("ok", "429", "503", "504", "error", "dropped")


@dataclass
class WorkloadConfig:
    """One load bout: loop discipline, stop condition, and query mix."""

    mode: str = "closed"  # "closed" | "open"
    duration_s: float = 5.0
    target_rps: float = 100.0  # open-loop arrival rate
    concurrency: int = 4  # closed-loop workers / open-loop in-flight cap
    max_requests: int | None = None  # optional request budget
    range_fraction: float = 1.0  # share of *read* requests going to /range
    append_fraction: float = 0.0  # share of requests appending rows (mutable)
    delete_fraction: float = 0.0  # share of requests deleting rows (mutable)
    batch_size: int = 8  # query rows per request
    k: int = 5  # kNN neighbor count
    eps_scale: float = 1.0  # range radius = eps_scale * index eps
    zipf_s: float = 0.0  # cell-popularity skew exponent (0 = uniform)
    deadline_s: float | None = None  # per-request deadline (in-process)
    think_time_s: float = 0.0  # closed-loop pause between requests
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ValueError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.target_rps <= 0:
            raise ValueError("target_rps must be positive")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.max_requests is not None and self.max_requests < 1:
            raise ValueError("max_requests must be >= 1 when given")
        if not 0.0 <= self.range_fraction <= 1.0:
            raise ValueError("range_fraction must be in [0, 1]")
        if not 0.0 <= self.append_fraction <= 1.0:
            raise ValueError("append_fraction must be in [0, 1]")
        if not 0.0 <= self.delete_fraction <= 1.0:
            raise ValueError("delete_fraction must be in [0, 1]")
        if self.append_fraction + self.delete_fraction > 1.0:
            raise ValueError(
                "append_fraction + delete_fraction must not exceed 1"
            )
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if not 0.0 < self.eps_scale <= 1.0:
            raise ValueError(
                "eps_scale must be in (0, 1] -- a range query radius must "
                "not exceed the index eps"
            )
        if self.zipf_s < 0:
            raise ValueError("zipf_s must be >= 0")
        if self.think_time_s < 0:
            raise ValueError("think_time_s must be >= 0")


#: Field names a config file may set (runner validation).
WORKLOAD_KEYS = frozenset(f.name for f in fields(WorkloadConfig))


class QuerySampler:
    """Deterministic query-mix sampler over an engine's indexed dataset.

    A pool of ``pool_size`` query points is drawn up front: dataset rows
    -- uniform, or Zipf-skewed over grid-cell popularity ranks
    (``zipf_s > 0`` on a grid index: cell of rank ``r`` drawn with
    probability proportional to ``r**-zipf_s``, then a uniform member of
    that cell) -- jittered by ``eps/4`` like
    :func:`~repro.service.query.sample_queries`.  Each request then
    draws ``batch_size`` pool rows and a kind from ``range_fraction``.
    Everything downstream of the constructor uses only the caller's RNG,
    so per-worker seeded streams reproduce exactly.
    """

    def __init__(self, engine, config: WorkloadConfig, *,
                 pool_size: int = 512) -> None:
        self.config = config
        self.eps = float(engine.eps) * config.eps_scale
        self.k = int(config.k)
        self.batch_size = int(config.batch_size)
        self.range_fraction = float(config.range_fraction)
        self.append_fraction = float(config.append_fraction)
        self.delete_fraction = float(config.delete_fraction)
        rng = np.random.default_rng(config.seed)
        # A MutableIndex samples from its *base* generation -- that is
        # where the dataset and (for zipf) the grid occupancy live.
        eng = getattr(engine, "base_engine", engine)
        rows = self._draw_rows(eng, config, rng, pool_size)
        base = eng.source.take(np.asarray(rows, dtype=np.int64))
        jitter = rng.uniform(-engine.eps / 4.0, engine.eps / 4.0, base.shape)
        self.pool = np.ascontiguousarray(base + jitter)

    @staticmethod
    def _draw_rows(engine, config, rng, pool_size: int) -> np.ndarray:
        n = int(engine.n_points)
        if config.zipf_s > 0 and getattr(engine, "kind", None) == "grid":
            grid = engine.index
            starts, ends, sort = grid._starts, grid._ends, grid._sort
            counts = ends - starts
            if counts.size:
                order = np.argsort(counts)[::-1]  # cells by popularity
                ranks = np.arange(1, order.size + 1, dtype=np.float64)
                probs = ranks ** -config.zipf_s
                probs /= probs.sum()
                cells = rng.choice(order, size=pool_size, p=probs)
                return np.array(
                    [
                        int(sort[int(rng.integers(starts[c], ends[c]))])
                        for c in cells
                    ],
                    dtype=np.int64,
                )
        # Uniform fallback: tree indexes, no skew requested, or an
        # (impossible in practice) empty grid.
        return rng.integers(0, n, size=pool_size)

    def make_request(self, rng) -> tuple:
        """``(kind, queries, eps, k)`` for one request, from ``rng`` only.

        With a nonzero append/delete mix the mutation kind is drawn
        first; ``queries`` then carries the rows to append (deletes also
        get rows, so a target with nothing of its own to delete yet can
        fall back to an append instead of wasting the slot).
        """
        idx = rng.integers(0, self.pool.shape[0], size=self.batch_size)
        queries = self.pool[idx]
        if self.append_fraction > 0.0 or self.delete_fraction > 0.0:
            r = rng.random()
            if r < self.append_fraction:
                return "append", queries, None, None
            if r < self.append_fraction + self.delete_fraction:
                return "delete", queries, None, None
        if self.range_fraction >= 1.0 or rng.random() < self.range_fraction:
            return "range", queries, self.eps, None
        return "knn", queries, None, self.k


# ----------------------------------------------------------------------
# Targets: where a generated request goes
# ----------------------------------------------------------------------


class InProcessTarget:
    """Submit through a live :class:`QueryService` in this process."""

    def __init__(self, service: QueryService, index, *,
                 timeout_s: float = 30.0) -> None:
        self.service = service
        self.engine = service.engine_for(index)
        self.timeout_s = float(timeout_s)
        # Ids this target appended and has not yet deleted.  Each worker
        # deletes only rows it owns, so a mixed workload never races two
        # workers onto the same id (which would 400 under
        # ``missing="error"``).
        self._ids: list[int] = []

    def issue(self, kind, queries, eps, k, deadline_s) -> str:
        try:
            if kind in ("append", "delete"):
                if kind == "delete" and self._ids:
                    ids = [
                        self._ids.pop()
                        for _ in range(min(len(self._ids), queries.shape[0]))
                    ]
                    self.service.submit_delete(
                        self.engine, ids, deadline_s=deadline_s
                    ).result(self.timeout_s)
                else:  # append, or a delete with nothing owned yet
                    minted = self.service.submit_append(
                        self.engine, queries, deadline_s=deadline_s
                    ).result(self.timeout_s)
                    self._ids.extend(int(i) for i in minted)
                return "ok"
            pending = self.service.submit(
                self.engine,
                queries,
                eps=eps if kind == "range" else None,
                k=k if kind == "knn" else None,
                deadline_s=deadline_s,
            )
            pending.result(self.timeout_s)
            return "ok"
        except ServiceOverloaded:
            return "429"
        except DeadlineExceeded:  # before TimeoutError: it subclasses it
            return "504"
        except ServiceShuttingDown:
            return "503"
        except Exception:  # noqa: BLE001 -- any other failure is "error"
            return "error"

    def close(self) -> None:
        pass


class HttpTarget:
    """Drive a running ``serve`` endpoint over HTTP.

    Uses :meth:`~repro.service.client.ServiceClient.request_once` -- one
    attempt, **no** retries -- so every 429/503 the admission layer
    emits is *counted*, not absorbed; a load generator that silently
    retried would report the post-backoff world and hide the knee.
    One instance per worker thread (one underlying connection).
    """

    def __init__(self, host: str, port: int, *, index: str = "default",
                 timeout_s: float = 30.0) -> None:
        from repro.service.client import ServiceClient

        self.client = ServiceClient(host, port, timeout=timeout_s,
                                    max_attempts=1)
        self.index = index
        self._ids: list[int] = []  # appended-and-not-deleted (this worker)
        #: Server-echoed ``X-Request-Id`` of the last attempt (None after
        #: a connection-level failure) -- the generator loops copy it
        #: into each :class:`RequestRecord`.
        self.last_request_id: "str | None" = None

    def issue(self, kind, queries, eps, k, deadline_s) -> str:
        if kind in ("append", "delete"):
            return self._issue_mutation(kind, queries)
        payload: dict = {"index": self.index, "queries": queries.tolist()}
        if kind == "knn":
            payload["k"] = int(k)
            path = "/knn"
        else:
            if eps is not None:
                payload["eps"] = float(eps)
            path = "/range"
        try:
            status, _parsed, _retry_after = self.client.request_once(
                "POST", path, payload
            )
        except Exception:  # noqa: BLE001 -- connection-level failure
            self.last_request_id = None
            return "error"
        self.last_request_id = self.client.last_request_id
        if status == 200:
            return "ok"
        if status in (429, 503, 504):
            return str(status)
        return "error"

    def _issue_mutation(self, kind, queries) -> str:
        if kind == "delete" and self._ids:
            ids = [
                self._ids.pop()
                for _ in range(min(len(self._ids), queries.shape[0]))
            ]
            path, payload = "/delete", {"index": self.index, "ids": ids}
        else:  # append, or a delete with nothing owned yet
            path = "/append"
            payload = {"index": self.index, "rows": queries.tolist()}
        try:
            status, parsed, _retry_after = self.client.request_once(
                "POST", path, payload
            )
        except Exception:  # noqa: BLE001 -- connection-level failure
            self.last_request_id = None
            return "error"
        self.last_request_id = self.client.last_request_id
        if status == 200:
            if path == "/append":
                self._ids.extend(int(i) for i in parsed.get("ids", ()))
            return "ok"
        if status in (429, 503, 504):
            return str(status)
        return "error"

    def close(self) -> None:
        self.client.close()


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------


@dataclass
class RequestRecord:
    """One issued request (kept only up to the generator's record cap)."""

    t_offset_s: float  # issue (closed) / scheduled-arrival (open) offset
    latency_s: float
    status: str
    kind: str
    n_queries: int
    #: The server-echoed ``X-Request-Id`` (== its trace id); ``None`` for
    #: in-process targets and failed connections.  Quote it to
    #: ``GET /trace/<id>`` to pull the request's span tree.
    request_id: "str | None" = None


@dataclass
class LoadResult:
    """Outcome of one load bout: breakdowns + streaming latency histogram."""

    config: WorkloadConfig
    duration_s: float
    offered: int  # requests issued (every status, including dropped)
    statuses: dict
    latency: LogHistogram  # ok-request latency only
    records: list = field(default_factory=list)
    #: Engine pipeline seconds per stage accumulated *during this bout*
    #: (the ``repro_stage_seconds`` delta), attached by the convenience
    #: drivers when the metrics are reachable; ``None`` otherwise.  When
    #: set, :meth:`summary` grows one ``stage_<name>_seconds`` column
    #: per stage in :data:`repro.trace.STAGES` order.
    stages: "dict | None" = None

    @property
    def ok(self) -> int:
        return int(self.statuses.get("ok", 0))

    @property
    def throughput_rps(self) -> float:
        return self.ok / max(self.duration_s, 1e-9)

    @property
    def error_rate(self) -> float:
        return 1.0 - self.ok / max(self.offered, 1)

    def summary(self) -> dict:
        """One flat run-table row (JSON/CSV-safe: NaN becomes None)."""

        def _ms(q: float) -> "float | None":
            v = self.latency.quantile(q) * 1e3
            return None if math.isnan(v) else v

        snap = self.latency.snapshot()
        row = {
            "mode": self.config.mode,
            "offered_rps": (
                self.config.target_rps if self.config.mode == "open"
                else self.offered / max(self.duration_s, 1e-9)
            ),
            "concurrency": self.config.concurrency,
            "batch_size": self.config.batch_size,
            "range_fraction": self.config.range_fraction,
            "zipf_s": self.config.zipf_s,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "ok": self.ok,
            "err_429": int(self.statuses.get("429", 0)),
            "err_503": int(self.statuses.get("503", 0)),
            "err_504": int(self.statuses.get("504", 0)),
            "err_other": int(self.statuses.get("error", 0)),
            "dropped": int(self.statuses.get("dropped", 0)),
            "error_rate": self.error_rate,
            "throughput_rps": self.throughput_rps,
            "p50_ms": _ms(0.50),
            "p95_ms": _ms(0.95),
            "p99_ms": _ms(0.99),
            "max_ms": (None if snap["count"] == 0 else snap["max"] * 1e3),
            "mean_ms": (
                None if snap["count"] == 0
                else snap["sum"] / snap["count"] * 1e3
            ),
        }
        if self.stages is not None:
            # Fixed column set in STAGES order (not just observed stages)
            # so every row in a sweep CSV has identical headers.
            for stage in trace_mod.STAGES:
                row[f"stage_{stage}_seconds"] = float(
                    self.stages.get(stage, 0.0)
                )
        return row


# ----------------------------------------------------------------------
# The generator loops
# ----------------------------------------------------------------------


def run_load(
    config: WorkloadConfig,
    target_factory,
    sampler: QuerySampler,
    *,
    clock=time.monotonic,
    sleep=time.sleep,
    record_limit: int = 10_000,
) -> LoadResult:
    """Run one load bout and aggregate its outcome.

    ``target_factory()`` is called once per worker thread (targets hold
    per-thread state such as an HTTP connection).  ``clock`` and
    ``sleep`` are injectable so tests can drive the generator on a fake
    clock; request *content* is deterministic regardless of timing --
    closed-loop worker ``w`` draws from ``default_rng((seed, w))``, and
    open-loop request ``i`` draws from ``default_rng((seed, 1 << 32, i))``,
    so neither thread interleaving nor wall time changes what is asked.
    """
    if config.mode == "closed":
        return _run_closed(config, target_factory, sampler,
                           clock=clock, sleep=sleep, record_limit=record_limit)
    return _run_open(config, target_factory, sampler,
                     clock=clock, sleep=sleep, record_limit=record_limit)


class _Collector:
    """Thread-safe status counts + bounded records + shared histogram."""

    def __init__(self, record_limit: int) -> None:
        self.lock = threading.Lock()
        self.statuses: dict[str, int] = {}
        self.records: list[RequestRecord] = []
        self.latency = LogHistogram(DEFAULT_LATENCY_BUCKETS)
        self.record_limit = record_limit
        self.offered = 0
        self.crash: "BaseException | None" = None

    def crashed(self, exc: BaseException) -> None:
        """Record a worker *infrastructure* failure (factory/sampler).

        Request-level failures become status counts; an exception that
        escapes the worker loop means the harness itself is broken, and
        silently reporting zero offered load would mask it -- the first
        such exception re-raises from :func:`run_load` after join.
        """
        with self.lock:
            if self.crash is None:
                self.crash = exc

    def add(self, record: RequestRecord) -> None:
        with self.lock:
            self.offered += 1
            self.statuses[record.status] = (
                self.statuses.get(record.status, 0) + 1
            )
            if len(self.records) < self.record_limit:
                self.records.append(record)
        if record.status == "ok":
            self.latency.observe(record.latency_s)


def _split_quota(total: "int | None", workers: int) -> list:
    """Pre-split a request budget across workers (deterministic shares)."""
    if total is None:
        return [None] * workers
    base, extra = divmod(int(total), workers)
    return [base + (1 if w < extra else 0) for w in range(workers)]


def _run_closed(config, target_factory, sampler, *, clock, sleep,
                record_limit) -> LoadResult:
    col = _Collector(record_limit)
    start = clock()
    t_end = start + config.duration_s
    quotas = _split_quota(config.max_requests, config.concurrency)

    def worker(wi: int) -> None:
        try:
            rng = np.random.default_rng((config.seed, wi))
            target = target_factory()
            issued = 0
            try:
                while quotas[wi] is None or issued < quotas[wi]:
                    now = clock()
                    if now >= t_end:
                        break
                    kind, queries, eps, k = sampler.make_request(rng)
                    t0 = clock()
                    status = target.issue(kind, queries, eps, k,
                                          config.deadline_s)
                    t1 = clock()
                    col.add(RequestRecord(
                        t0 - start, t1 - t0, status, kind, queries.shape[0],
                        request_id=getattr(target, "last_request_id", None),
                    ))
                    issued += 1
                    if config.think_time_s > 0:
                        sleep(config.think_time_s)
            finally:
                target.close()
        except BaseException as exc:  # harness failure, not a request
            col.crashed(exc)

    threads = [
        threading.Thread(target=worker, args=(wi,), daemon=True)
        for wi in range(config.concurrency)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if col.crash is not None:
        raise col.crash
    return LoadResult(
        config=config,
        duration_s=max(clock() - start, 1e-9),
        offered=col.offered,
        statuses=col.statuses,
        latency=col.latency,
        records=col.records,
    )


def _run_open(config, target_factory, sampler, *, clock, sleep,
              record_limit) -> LoadResult:
    n_sched = (
        int(config.max_requests)
        if config.max_requests is not None
        else max(1, int(config.duration_s * config.target_rps))
    )
    interval = 1.0 / config.target_rps
    col = _Collector(record_limit)
    next_i = [0]
    ilock = threading.Lock()
    start = clock()
    # Arrivals more than one nominal duration behind schedule are shed
    # (status "dropped"): past that point the generator would only be
    # measuring its own backlog, and an unbounded drain could stall CI.
    late_cancel_s = config.duration_s

    def worker() -> None:
        try:
            target = target_factory()
            try:
                while True:
                    with ilock:
                        i = next_i[0]
                        if i >= n_sched:
                            return
                        next_i[0] += 1
                    t_sched = start + i * interval
                    now = clock()
                    if now < t_sched:
                        sleep(t_sched - now)
                    elif now - t_sched > late_cancel_s:
                        col.add(RequestRecord(i * interval, 0.0, "dropped",
                                              "range", 0))
                        continue
                    rng = np.random.default_rng((config.seed, 1 << 32, i))
                    kind, queries, eps, k = sampler.make_request(rng)
                    status = target.issue(kind, queries, eps, k,
                                          config.deadline_s)
                    done = clock()
                    # Open-loop latency runs from the *scheduled* arrival:
                    # time spent waiting for a free worker is queueing
                    # delay the service caused; it is charged to the
                    # request.
                    col.add(RequestRecord(
                        i * interval, done - t_sched, status, kind,
                        queries.shape[0],
                        request_id=getattr(target, "last_request_id", None),
                    ))
            finally:
                target.close()
        except BaseException as exc:  # harness failure, not a request
            col.crashed(exc)

    n_workers = min(max(config.concurrency, 1), n_sched)
    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(n_workers)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if col.crash is not None:
        raise col.crash
    return LoadResult(
        config=config,
        duration_s=max(clock() - start, 1e-9),
        offered=col.offered,
        statuses=col.statuses,
        latency=col.latency,
        records=col.records,
    )


# ----------------------------------------------------------------------
# Asyncio open-loop driver (HTTP targets only)
# ----------------------------------------------------------------------


class _AsyncConn:
    """Minimal asyncio HTTP/1.1 keep-alive client for the async driver.

    One instance per worker coroutine, mirroring the thread driver's
    one-``ServiceClient``-per-worker shape -- except a worker here costs
    an open socket and a coroutine frame, not an OS thread, which is
    what lets the open-loop driver hold hundreds of requests in flight.
    Stale keep-alive reuse (the server closed the idle socket between
    requests) gets one transparent reconnect, same policy as
    :meth:`~repro.service.client.ServiceClient.request_once`.
    """

    def __init__(self, host: str, port: int, *,
                 timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        self._reader: "asyncio.StreamReader | None" = None
        self._writer: "asyncio.StreamWriter | None" = None
        self._uses = 0
        #: ``X-Request-Id`` from the most recent response on this conn.
        self.last_request_id: "str | None" = None

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None
            self._uses = 0

    async def post(self, path: str, payload: dict):
        """``(status, parsed_body)``; raises on connection failure."""
        body = json.dumps(payload).encode()
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        for _ in range(2):
            reused = self._writer is not None and self._uses > 0
            try:
                if self._writer is None:
                    self._reader, self._writer = await asyncio.open_connection(
                        self.host, self.port
                    )
                    self._uses = 0
                self._writer.write(head + body)
                await self._writer.drain()
                return await asyncio.wait_for(
                    self._read_response(), self.timeout_s
                )
            except TimeoutError:
                # (TimeoutError subclasses OSError: catch it first.)  A
                # response that never came is NOT safely retriable --
                # the request may have executed.  Surface it.
                await self.close()
                raise
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                await self.close()
                if not reused:
                    raise
                # Stale keep-alive socket: retry once on a fresh one.
        raise ConnectionError("reconnect failed")  # pragma: no cover

    async def _read_response(self):
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        status = int(line.split(None, 2)[1])
        headers: dict[str, str] = {}
        while True:
            hline = await self._reader.readline()
            if hline in (b"\r\n", b"\n"):
                break
            if not hline:
                raise ConnectionResetError("truncated response headers")
            key, sep, value = hline.decode("latin-1", "replace").partition(":")
            if sep:
                headers[key.strip().lower()] = value.strip()
        self.last_request_id = headers.get("x-request-id")
        length = int(headers.get("content-length", "0"))
        raw = await self._reader.readexactly(length) if length else b""
        if "close" in headers.get("connection", "").lower():
            await self.close()
        else:
            self._uses += 1
        if raw and "application/json" in headers.get("content-type", ""):
            return status, json.loads(raw)
        return status, raw.decode()


class _AsyncHttpWorker:
    """Per-coroutine request issuer: :class:`HttpTarget` semantics
    (one attempt, no retries, 429/503/504 *counted*) over an
    :class:`_AsyncConn`."""

    def __init__(self, host: str, port: int, index: str, *,
                 timeout_s: float = 30.0) -> None:
        self.conn = _AsyncConn(host, port, timeout_s=timeout_s)
        self.index = index
        self._ids: list[int] = []  # appended-and-not-deleted (this worker)

    @property
    def last_request_id(self) -> "str | None":
        return self.conn.last_request_id

    async def issue(self, kind, queries, eps, k) -> str:
        if kind in ("append", "delete"):
            return await self._issue_mutation(kind, queries)
        payload: dict = {"index": self.index, "queries": queries.tolist()}
        if kind == "knn":
            payload["k"] = int(k)
            path = "/knn"
        else:
            if eps is not None:
                payload["eps"] = float(eps)
            path = "/range"
        try:
            status, _parsed = await self.conn.post(path, payload)
        except Exception:  # noqa: BLE001 -- connection-level failure
            self.conn.last_request_id = None
            return "error"
        if status == 200:
            return "ok"
        if status in (429, 503, 504):
            return str(status)
        return "error"

    async def _issue_mutation(self, kind, queries) -> str:
        if kind == "delete" and self._ids:
            ids = [
                self._ids.pop()
                for _ in range(min(len(self._ids), queries.shape[0]))
            ]
            path, payload = "/delete", {"index": self.index, "ids": ids}
        else:  # append, or a delete with nothing owned yet
            path = "/append"
            payload = {"index": self.index, "rows": queries.tolist()}
        try:
            status, parsed = await self.conn.post(path, payload)
        except Exception:  # noqa: BLE001 -- connection-level failure
            self.conn.last_request_id = None
            return "error"
        if status == 200:
            if path == "/append" and isinstance(parsed, dict):
                self._ids.extend(int(i) for i in parsed.get("ids", ()))
            return "ok"
        if status in (429, 503, 504):
            return str(status)
        return "error"

    async def close(self) -> None:
        await self.conn.close()


async def _run_open_async(config, host, port, index_name, sampler,
                          record_limit) -> LoadResult:
    n_sched = (
        int(config.max_requests)
        if config.max_requests is not None
        else max(1, int(config.duration_s * config.target_rps))
    )
    interval = 1.0 / config.target_rps
    col = _Collector(record_limit)  # single loop thread: lock is uncontended
    loop = asyncio.get_running_loop()
    next_i = [0]  # loop-confined: workers interleave only at awaits
    start = loop.time()
    late_cancel_s = config.duration_s

    async def worker() -> None:
        target = _AsyncHttpWorker(host, port, index_name)
        try:
            while True:
                i = next_i[0]
                if i >= n_sched:
                    return
                next_i[0] += 1
                t_sched = start + i * interval
                now = loop.time()
                if now < t_sched:
                    await asyncio.sleep(t_sched - now)
                elif now - t_sched > late_cancel_s:
                    col.add(RequestRecord(i * interval, 0.0, "dropped",
                                          "range", 0))
                    continue
                rng = np.random.default_rng((config.seed, 1 << 32, i))
                kind, queries, eps, k = sampler.make_request(rng)
                status = await target.issue(kind, queries, eps, k)
                done = loop.time()
                # Same rule as the thread driver: open-loop latency runs
                # from the *scheduled* arrival, charging queueing delay
                # to the request.
                col.add(RequestRecord(
                    i * interval, done - t_sched, status, kind,
                    queries.shape[0],
                    request_id=target.last_request_id,
                ))
        finally:
            await target.close()

    n_workers = min(max(config.concurrency, 1), n_sched)
    results = await asyncio.gather(
        *(worker() for _ in range(n_workers)), return_exceptions=True
    )
    for r in results:
        if isinstance(r, BaseException):
            raise r  # harness failure, not a request outcome
    return LoadResult(
        config=config,
        duration_s=max(loop.time() - start, 1e-9),
        offered=col.offered,
        statuses=col.statuses,
        latency=col.latency,
        records=col.records,
    )


def run_load_async(
    config: WorkloadConfig,
    host: str,
    port: int,
    sampler: QuerySampler,
    *,
    index_name: str = "default",
    record_limit: int = 10_000,
) -> LoadResult:
    """Asyncio open-loop driver against a live HTTP endpoint.

    Same schedule, same request content (request ``i`` draws from
    ``default_rng((seed, 1 << 32, i))``), same scheduled-arrival latency
    and shedding rules as the threaded open loop -- but ``concurrency``
    buys coroutines holding keep-alive sockets instead of OS threads,
    so hundreds of requests can be in flight from one driver thread.
    Open mode only: a closed loop blocks each worker on its own answer
    by definition, which threads already model faithfully.
    """
    if config.mode != "open":
        raise ValueError("run_load_async supports mode='open' only")
    return asyncio.run(_run_open_async(
        config, host, port, index_name, sampler, record_limit
    ))


# ----------------------------------------------------------------------
# Convenience drivers + sweep analysis
# ----------------------------------------------------------------------


def stage_seconds_from_snapshot(metrics_snapshot: dict) -> dict:
    """Per-stage engine seconds from a ``MetricsRegistry.snapshot()``.

    Reads the ``repro_stage_seconds`` labeled histogram (keys are
    ``"stage=<name>"`` strings mapping to per-child snapshots) and
    returns ``{stage: total_seconds}``; empty when the metric is absent
    or has observed nothing yet.
    """
    hist = metrics_snapshot.get("repro_stage_seconds")
    out: dict[str, float] = {}
    if isinstance(hist, dict):
        for key, child in hist.items():
            if key.startswith("stage=") and isinstance(child, dict):
                out[key[len("stage="):]] = float(child.get("sum", 0.0))
    return out


def stage_seconds_from_text(metrics_text: str) -> dict:
    """Per-stage engine seconds from a ``/metrics`` scrape.

    Same shape as :func:`stage_seconds_from_snapshot`, sourced from the
    ``repro_stage_seconds_sum{stage="..."}`` series in the Prometheus
    text exposition.
    """
    parsed = parse_prometheus_text(metrics_text)
    out: dict[str, float] = {}
    for labels, value in parsed.get("repro_stage_seconds_sum", {}).items():
        stage = dict(labels).get("stage")
        if stage:
            out[stage] = float(value)
    return out


def _stage_delta(before: dict, after: dict) -> "dict | None":
    """Seconds accrued between two stage snapshots (None when empty)."""
    delta = {
        stage: max(0.0, after[stage] - before.get(stage, 0.0))
        for stage in after
    }
    return delta if delta else None


def run_against_service(
    index_path,
    config: WorkloadConfig,
    *,
    service: "QueryService | None" = None,
    record_limit: int = 10_000,
    **service_kwargs,
) -> LoadResult:
    """Load-test an in-process :class:`QueryService` over one index.

    A service is created (and stopped afterwards) unless one is passed
    in; extra keyword arguments feed the created service's constructor.
    """
    own = service is None
    svc = service if service is not None else QueryService(**service_kwargs)
    try:
        engine = svc.engine_for(index_path)
        sampler = QuerySampler(engine, config)
        svc.start()
        before = stage_seconds_from_snapshot(svc.metrics.snapshot())
        result = run_load(
            config,
            lambda: InProcessTarget(svc, engine),
            sampler,
            record_limit=record_limit,
        )
        after = stage_seconds_from_snapshot(svc.metrics.snapshot())
        result.stages = _stage_delta(before, after)
        return result
    finally:
        if own:
            svc.stop()


def run_against_server(
    index_path,
    host: str,
    port: int,
    config: WorkloadConfig,
    *,
    index_name: str = "default",
    record_limit: int = 10_000,
    driver: str = "thread",
) -> LoadResult:
    """Load-test a live ``serve`` endpoint over HTTP.

    The sampler still needs the dataset, so ``index_path`` is opened
    locally (read-only) to build the query pool; requests themselves go
    over the wire through one non-retrying connection per worker.
    ``driver="async"`` swaps the worker threads for the asyncio
    open-loop driver (:func:`run_load_async`; open mode only).
    """
    from repro.index.delta import MutableIndex, is_mutable_index
    from repro.service.query import QueryEngine

    if driver not in ("thread", "async"):
        raise ValueError(f"driver must be 'thread' or 'async'; got {driver!r}")
    engine = (
        MutableIndex(index_path)
        if is_mutable_index(index_path)
        else QueryEngine(index_path)
    )
    sampler = QuerySampler(engine, config)

    def _scrape() -> dict:
        """Stage totals off ``/metrics``; empty when the scrape fails
        (a missing scrape must not fail the bout itself)."""
        from repro.service.client import ServiceClient

        try:
            with ServiceClient(host, port, timeout=5.0,
                               max_attempts=1) as sc:
                return stage_seconds_from_text(sc.metrics_text())
        except Exception:  # noqa: BLE001 -- metrics are best-effort
            return {}

    before = _scrape()
    if driver == "async":
        result = run_load_async(
            config, host, port, sampler,
            index_name=index_name, record_limit=record_limit,
        )
    else:
        result = run_load(
            config,
            lambda: HttpTarget(host, port, index=index_name),
            sampler,
            record_limit=record_limit,
        )
    result.stages = _stage_delta(before, _scrape())
    return result


def saturation_knee(
    rows,
    *,
    offered_key: str = "offered_rps",
    achieved_key: str = "throughput_rps",
    tolerance: float = 0.85,
) -> "float | None":
    """Highest offered rate whose achieved throughput kept pace.

    Walking the sweep rows in ascending offered order, the knee is the
    last rate with ``achieved >= tolerance * offered``; ``None`` when
    even the lowest rate saturated.  Pure bucket math over the run
    table, so it works on rows from JSON as well as live results.
    """
    if not 0.0 < tolerance <= 1.0:
        raise ValueError("tolerance must be in (0, 1]")
    knee = None
    for row in sorted(rows, key=lambda r: float(r[offered_key])):
        if float(row[achieved_key]) >= tolerance * float(row[offered_key]):
            knee = float(row[offered_key])
    return knee


__all__ = [
    "STATUSES",
    "WORKLOAD_KEYS",
    "WorkloadConfig",
    "QuerySampler",
    "InProcessTarget",
    "HttpTarget",
    "RequestRecord",
    "LoadResult",
    "run_load",
    "run_load_async",
    "run_against_service",
    "run_against_server",
    "stage_seconds_from_snapshot",
    "stage_seconds_from_text",
    "saturation_knee",
]
