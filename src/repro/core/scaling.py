"""Input scaling for FP16 robustness (the paper's stated future work).

Section 5 of the paper: "It is likely that scaling the input data could
further increase the accuracy of our results, and in the case where a
dataset is adversely affected by conversion to FP16, it would mitigate this
numerical sensitivity.  Future work will investigate this research avenue."

This module implements that avenue:

* :func:`fit_scaler` chooses an affine transform ``x -> (x - shift) * scale``
  that (a) centers the data, shrinking coordinate magnitudes -- FP16's
  absolute precision is relative to magnitude, so smaller values quantize
  finer -- and (b) places the largest magnitude at a configurable fraction
  of the FP16 range.
* Euclidean distances are translation-invariant and scale-equivariant, so a
  self-join at radius ``eps`` on the original data is *exactly* a self-join
  at ``eps * scale`` on the transformed data; :class:`Fp16Scaler` carries
  the radius mapping so results need no un-mapping at all.

``benchmarks/bench_extensions.py::test_input_scaling_accuracy`` quantifies the accuracy gain --
the experiment the paper left for future work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fp.fp16 import FP16_MAX


@dataclass(frozen=True)
class Fp16Scaler:
    """Affine pre-conditioner for FP16 storage.

    Attributes
    ----------
    shift:
        Per-dimension offsets subtracted before scaling (the data mean).
    scale:
        Global multiplicative factor.
    """

    shift: np.ndarray
    scale: float

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Map data into the conditioned space."""
        return (np.asarray(data, dtype=np.float64) - self.shift) * self.scale

    def transform_radius(self, eps: float) -> float:
        """Map a search radius into the conditioned space."""
        return float(eps) * self.scale

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        """Map conditioned data back to the original space."""
        return np.asarray(data, dtype=np.float64) / self.scale + self.shift


def fit_scaler(
    data: np.ndarray,
    *,
    center: bool = True,
    target_fraction: float = 0.25,
) -> Fp16Scaler:
    """Fit an FP16 pre-conditioner to a dataset.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    center:
        Subtract the per-dimension mean first.  Centering is the main
        accuracy lever: FP16 stores ``mean + delta`` with error relative to
        ``|mean + delta|``, while distances only depend on ``delta``.
    target_fraction:
        The post-scale maximum magnitude as a fraction of FP16_MAX.
        A conservative default (0.25) leaves headroom for any downstream
        arithmetic while already using the full significand.

    Returns
    -------
    Fp16Scaler
        The fitted transform; ``scale`` is 1.0 for all-zero data.
    """
    if not 0.0 < target_fraction <= 1.0:
        raise ValueError("target_fraction must be in (0, 1]")
    data = np.asarray(data, dtype=np.float64)
    shift = data.mean(axis=0) if center else np.zeros(data.shape[1])
    centered = data - shift
    max_abs = float(np.abs(centered).max()) if centered.size else 0.0
    scale = (target_fraction * FP16_MAX) / max_abs if max_abs > 0 else 1.0
    return Fp16Scaler(shift=shift, scale=float(scale))
