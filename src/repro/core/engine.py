"""Shared vectorized join-engine: the functional hot path of every kernel.

Architecture
------------
All four simulated kernels (FaSTED, TED-Join, GDS-Join, MiSTIC) compute the
same thing functionally -- "which candidate pairs are within ``eps``" -- and
before this module existed each re-implemented its own tile loop, its own
Python-list pair accumulation, and its own diagonal/mirror bookkeeping.  The
engine factors that shell out so a kernel only supplies the *numerics*: a
callback producing the squared-distance block for a tile or candidate group,
in whatever precision that kernel models (FP16-32, FP32, FP64).

Two execution shapes cover every kernel:

* :func:`symmetric_self_join` -- dense/brute kernels.  The point set is cut
  into ``row_block`` tiles and only the upper triangle of the tile grid
  (``c0 >= r0``) is computed; off-diagonal tiles are mirrored into both
  pair directions, halving the GEMM work.  ``dist(i, j) == dist(j, i)``
  holds bitwise for every precision here because float addition is
  commutative and BLAS dot products do not depend on the operand block's
  position, so mirroring is *bit-identical* to computing the full matrix
  (tests/test_engine.py pins this against re-implementations of the seed
  kernels).  Tiles can optionally be dispatched to a thread pool
  (``workers``); NumPy/BLAS release the GIL for the heavy ops, results are
  committed in deterministic tile order either way.

* :func:`candidate_self_join` -- index-backed kernels.  Iterates
  ``(members, candidates)`` groups from a grid/tree index, evaluates the
  kernel's distance block per group (optionally chunking very wide
  candidate lists to bound temporaries), filters by ``eps^2``, drops self
  pairs, and accumulates.

Both shapes emit into a :class:`repro.core.results.PairAccumulator` --
preallocated, geometrically grown arrays -- instead of per-tile Python
lists, and hand back the accumulator so the kernel can attach its own
metadata (padded candidate counts, short-circuit profiles) via the
``on_group`` hook without re-iterating the index.

The timing paths of the kernels are untouched: the engine is purely the
functional executor (ROADMAP lists "engine-backed timing-path reuse" as a
follow-on).
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.results import PairAccumulator

#: ``tile_fn(r0, r1, c0, c1)`` returns the squared-distance block for points
#: ``[r0:r1]`` x ``[c0:c1]`` in the kernel's working precision.
TileFn = Callable[[int, int, int, int], np.ndarray]

#: ``dist_fn(members, candidates)`` returns the squared-distance block for
#: two index arrays into the dataset.
GroupDistFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def norm_expansion_sq_dists(
    s_row: np.ndarray, s_col: np.ndarray, gram: np.ndarray
) -> np.ndarray:
    """``max(0, (s_i + s_j) - 2*gram)`` computed in place on ``gram``.

    The shared Step-3 recombination of every kernel.  Elementwise order is
    exactly ``(s_row[:, None] + s_col[None, :]) - 2.0 * gram`` so results
    are bit-identical to the naive expression in any precision, but only
    one temporary (the broadcast norm sum) is allocated; the scale,
    subtract, and clamp reuse the gram buffer.
    """
    t = s_row[:, None] + s_col[None, :]
    np.multiply(gram, 2.0, out=gram)
    np.subtract(t, gram, out=gram)
    return np.maximum(gram, 0.0, out=gram)


def iter_symmetric_tiles(
    n: int, row_block: int
) -> Iterator[tuple[int, int, int, int]]:
    """Upper-triangle tile coordinates ``(r0, r1, c0, c1)`` with ``c0 >= r0``."""
    for r0 in range(0, n, row_block):
        r1 = min(r0 + row_block, n)
        for c0 in range(r0, n, row_block):
            yield r0, r1, c0, min(c0 + row_block, n)


def _extract_tile(
    tile_fn: TileFn,
    eps2: float,
    store_distances: bool,
    tile: tuple[int, int, int, int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Evaluate one tile and extract its in-range pairs (global indices)."""
    r0, r1, c0, c1 = tile
    d2 = tile_fn(r0, r1, c0, c1)
    mask = d2 <= eps2
    if c0 == r0:
        np.fill_diagonal(mask, False)
    ii, jj = np.nonzero(mask)
    gi = ii.astype(np.int64)
    gi += r0
    gj = jj.astype(np.int64)
    gj += c0
    dd = d2[ii, jj].astype(np.float32) if store_distances else None
    return gi, gj, dd


def symmetric_self_join(
    n: int,
    eps2: float,
    tile_fn: TileFn,
    *,
    row_block: int = 2048,
    store_distances: bool = True,
    workers: int = 0,
) -> PairAccumulator:
    """Tiled self-join over the upper triangle of the tile grid.

    Only tiles with ``c0 >= r0`` are evaluated; for off-diagonal tiles both
    pair directions are emitted from the one evaluation.  Diagonal tiles
    already contain both directions and get their self-pair diagonal
    cleared.

    Parameters
    ----------
    n:
        Number of points.
    eps2:
        Squared radius in the kernel's working precision (pairs with
        ``d2 <= eps2`` are kept, matching every kernel's seed semantics).
    tile_fn:
        Kernel numerics; see :data:`TileFn`.
    row_block:
        Tile edge (performance knob only -- results are identical for any
        value).
    store_distances:
        Track per-pair squared distances.
    workers:
        When > 1, evaluate tiles in a thread pool of this size (off by
        default).  BLAS/NumPy release the GIL for the heavy ops; pairs are
        committed in tile order, so results are deterministic and identical
        to the serial path.
    """
    acc = PairAccumulator(store_distances=store_distances)
    tiles = list(iter_symmetric_tiles(n, row_block))

    def commit(
        tile: tuple[int, int, int, int],
        extracted: tuple[np.ndarray, np.ndarray, np.ndarray | None],
    ) -> None:
        gi, gj, dd = extracted
        acc.append(gi, gj, dd)
        if tile[2] != tile[0]:  # mirrored direction of an off-diagonal tile
            acc.append(gj, gi, dd)

    if workers and workers > 1 and len(tiles) > 1:
        # Windowed submission: keep only ~2x workers tiles in flight so
        # finished-but-uncommitted results never pile up (commit order is
        # still strictly tile order -> deterministic output).
        window = 2 * int(workers)
        pending: deque = deque()
        with ThreadPoolExecutor(max_workers=int(workers)) as pool:
            for tile in tiles:
                pending.append(
                    (tile, pool.submit(_extract_tile, tile_fn, eps2, store_distances, tile))
                )
                if len(pending) >= window:
                    head, fut = pending.popleft()
                    commit(head, fut.result())
            while pending:
                head, fut = pending.popleft()
                commit(head, fut.result())
    else:
        for tile in tiles:
            commit(tile, _extract_tile(tile_fn, eps2, store_distances, tile))
    return acc


def candidate_self_join(
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    dist_fn: GroupDistFn,
    eps2: float,
    *,
    store_distances: bool = True,
    candidate_chunk: int | None = None,
    on_group: Callable[[np.ndarray, np.ndarray], None] | None = None,
) -> PairAccumulator:
    """Index-backed self-join over ``(members, candidates)`` groups.

    Parameters
    ----------
    groups:
        Iterable of ``(members, candidates)`` global-index arrays, as
        produced by ``GridIndex.iter_cells`` or ``MultiSpaceTree.iter_groups``.
    dist_fn:
        Kernel numerics; see :data:`GroupDistFn`.
    eps2:
        Squared radius in the kernel's working precision.
    store_distances:
        Track per-pair squared distances.
    candidate_chunk:
        Evaluate at most this many candidates per ``dist_fn`` call to bound
        the temporary block (None: whole group at once).
    on_group:
        Statistics hook invoked once per nonempty group *before* evaluation
        -- kernels use it to tally candidate counts / sampling without a
        second index pass.
    """
    acc = PairAccumulator(store_distances=store_distances)
    for members, candidates in groups:
        if members.size == 0 or candidates.size == 0:
            continue
        if on_group is not None:
            on_group(members, candidates)
        chunk = candidate_chunk or candidates.size
        for c0 in range(0, candidates.size, chunk):
            cand = candidates[c0 : c0 + chunk]
            d2 = dist_fn(members, cand)
            mask = d2 <= eps2
            mi, cj = np.nonzero(mask)
            gi = members[mi]
            gj = cand[cj]
            keep = gi != gj
            dd = None
            if store_distances:
                dd = d2[mi, cj][keep].astype(np.float32)
            acc.append(gi[keep], gj[keep], dd)
    return acc
