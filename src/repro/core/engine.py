"""Shared vectorized join-engine: the functional hot path of every kernel.

Architecture
------------
All four simulated kernels (FaSTED, TED-Join, GDS-Join, MiSTIC) compute the
same thing functionally -- "which candidate pairs are within ``eps``" -- and
before this module existed each re-implemented its own tile loop, its own
Python-list pair accumulation, and its own diagonal/mirror bookkeeping.  The
engine factors that shell out so a kernel only supplies the *numerics*: a
callback producing the squared-distance block for a tile or candidate group,
in whatever precision that kernel models (FP16-32, FP32, FP64).

Two execution shapes cover every kernel:

* :func:`symmetric_self_join` -- dense/brute kernels.  The point set is cut
  into ``row_block`` tiles and only the upper triangle of the tile grid
  (``c0 >= r0``) is computed; off-diagonal tiles are mirrored into both
  pair directions, halving the GEMM work.  ``dist(i, j) == dist(j, i)``
  holds bitwise for every precision here because float addition is
  commutative and BLAS dot products do not depend on the operand block's
  position, so mirroring is *bit-identical* to computing the full matrix
  (tests/test_engine.py pins this against re-implementations of the seed
  kernels).  Tile dispatch is governed by a :class:`WorkerPlan` -- serial
  by default, a thread pool when ``workers`` asks for one (explicitly or
  via the topology-derived ``"auto"`` plan); NumPy/BLAS release the GIL
  for the heavy ops, results are committed in deterministic tile order
  either way, so parallel output is bit-identical to serial.

* :func:`candidate_self_join` -- index-backed kernels.  Iterates
  ``(members, candidates)`` groups from a grid/tree index, evaluates the
  kernel's distance block per group (optionally chunking very wide
  candidate lists to bound temporaries), filters by ``eps^2``, drops self
  pairs, and accumulates.  Its batched sibling
  :func:`batched_candidate_self_join` concatenates many *small* groups
  into one padded batch GEMM per flush -- the host analogue of how the
  paper's GPU kernels dispatch work in fixed 8x8 tiles -- which lifts the
  index-backed kernels at small eps, where per-group GEMMs degenerate to
  Python-call overhead.

A third shape extends the symmetric executor past resident memory:
:func:`streaming_self_join` drives the same tile geometry from a
:class:`repro.data.source.DatasetSource`, scheduling row-block loads with a
:class:`TilePlan`, prefetching the next block on a background thread while
the current GEMM runs, and holding at most a handful of blocks resident
(``O(row_block * d)``) -- bit-identical to the in-memory path (see
docs/ARCHITECTURE.md for the dataflow and the bit-identity argument).

The fourth shape generalizes all of this to **two-source joins** ``A x B``:
:func:`rect_join` is the in-memory rectangular executor (every tile of the
``A``-rows x ``B``-cols grid is evaluated -- no symmetry to exploit, no
diagonal to clear, pairs emitted in one direction only) and
:func:`streaming_join` is its out-of-core form, driven by a rectangular
:class:`RectTilePlan` with independent row/column block schedules and
prefetch across both sources.  :func:`candidate_join` is the two-source
candidate-group executor (grid/tree candidates from the right set per
query group of the left set; index equality does *not* mean identity, so
no self pairs are dropped).

All shapes emit into a :class:`repro.core.results.PairAccumulator` --
preallocated, geometrically grown arrays -- instead of per-tile Python
lists, and hand back the accumulator so the kernel can attach its own
metadata (padded candidate counts, short-circuit profiles) via the
``on_group`` hook without re-iterating the index.

**Parallel execution** is owned by :class:`WorkerPlan`: worker counts are
resolved from core topology (``os.cpu_count``), BLAS thread-pinning
environment variables, and the ``REPRO_WORKERS`` override, and the plan
also picks a cache-fit tile edge for callers that leave ``row_block``
unset.  The tiled executors (symmetric, rectangular, both streaming
forms) dispatch tile evaluation to a thread pool but commit results in
strict tile order, and the candidate executors can fan groups out to a
fork-based process pool (:func:`process_candidate_self_join`) when the
per-group work is too fine-grained for threads -- in every case the
output is bit-identical to serial execution.

**Timing-path reuse**: the tiled kernels' ``cost()`` models derive their
``KernelCost.n_tiles`` from the same :class:`TilePlan` geometry the
functional executors run (``TilePlan(symmetric=False)`` is the device
schedule: every block tile of the full grid), so modeled and executed
tile counts can no longer drift apart -- tests/test_workers.py executes
the functional path at the device plan and asserts the equality.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import resource_tracker, shared_memory
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro import faults
from repro import trace as trace_mod
from repro.core.results import PairAccumulator

#: Profiling seam (re-exported from :mod:`repro.trace`): executors fetch
#: the ambient hooks object once per call and attribute per-stage time
#: to it -- adjacency (index group iteration), gather, gemm, rz
#: (norm-expansion recombination), commit (pair extraction/append), and
#: worker (pool wait).  ``current_hooks()`` returns ``None`` unless a
#: caller installed hooks via ``use_hooks`` -- the default costs one
#: ContextVar read per executor invocation, nothing per tile.
TraceHooks = trace_mod.TraceHooks
current_trace_hooks = trace_mod.current_hooks


def _timed_groups(
    groups: Iterable[tuple[np.ndarray, np.ndarray]], hooks: "TraceHooks"
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield groups, attributing iterator-pull time to ``adjacency``.

    Candidate groups are computed lazily by the grid/tree iterators, so
    the time spent *producing* the next group is index traversal work,
    not kernel math -- timed here at the executor's pull site.
    """
    it = iter(groups)
    while True:
        t0 = time.perf_counter()
        try:
            item = next(it)
        except StopIteration:
            return
        hooks.record("adjacency", time.perf_counter() - t0)
        yield item

#: ``tile_fn(r0, r1, c0, c1)`` returns the squared-distance block for points
#: ``[r0:r1]`` x ``[c0:c1]`` in the kernel's working precision.
TileFn = Callable[[int, int, int, int], np.ndarray]

#: ``dist_fn(members, candidates)`` returns the squared-distance block for
#: two index arrays into the dataset.
GroupDistFn = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Default bound on the elements of one candidate-group distance block;
#: callers chunk the candidate axis so a temporary stays ~this many
#: elements regardless of cell density (shared by the per-group executor,
#: the batched executor's large-group bypass, and the kernels).
GROUP_CHUNK_ELEMS = 2_000_000

#: ``prepare(raw_block)`` turns a loaded float64 row block into the kernel's
#: per-block working state (e.g. quantized coordinates + precomputed norms).
BlockPrepareFn = Callable[[np.ndarray], Any]

#: ``block_sq_dists(row_state, col_state)`` returns the squared-distance
#: block between two prepared blocks in the kernel's working precision.
BlockDistFn = Callable[[Any, Any], np.ndarray]

#: Default byte budget one distance tile (the ``row_block x row_block``
#: d2 block plus its two operand panels) should fit in -- sized for the
#: per-core last-level-cache slice of current server parts, where the
#: extraction pass (mask + nonzero + gather) re-reads the tile it just
#: wrote.  ``WorkerPlan(tile_budget_bytes=...)`` overrides it.
TILE_CACHE_BUDGET_BYTES = 3 << 19  # 1.5 MiB

#: Environment variables consulted (in order) for the BLAS thread count.
_BLAS_THREAD_ENV = (
    "OPENBLAS_NUM_THREADS",
    "OMP_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


def blas_thread_count() -> int | None:
    """BLAS thread-pool width, from the pinning env vars (None: unknown).

    NumPy's BLAS reads these variables at import time; when none is set
    the library typically claims every core, which is exactly the case
    where adding engine-level workers would oversubscribe -- the
    :class:`WorkerPlan` heuristic keys off this distinction.
    """
    for name in _BLAS_THREAD_ENV:
        raw = os.environ.get(name, "").strip()
        if raw:
            # OMP_NUM_THREADS accepts a per-nesting-level list ("4,2");
            # the outermost level is the one the BLAS pool uses.
            head = raw.split(",")[0].strip()
            try:
                return max(1, int(head))
            except ValueError:
                continue
    return None


@dataclass(frozen=True)
class WorkerPlan:
    """Resolved parallel-execution plan: worker count + tile sizing.

    Every executor takes ``workers`` as an int (0/None = serial, N > 0 =
    exactly N workers), the string ``"auto"`` / the int ``-1`` (resolve
    from topology), or an already-resolved plan.  Resolution order for
    ``"auto"``:

    1. ``REPRO_WORKERS`` environment variable, when set (``source="env"``);
    2. core topology: with BLAS pinned to ``t`` threads (see
       :func:`blas_thread_count`), ``cpu_count // t`` tile workers keep
       every core busy without oversubscribing the GEMMs; with BLAS
       thread count unknown the library is assumed to own the cores
       already, and at most two workers are used purely to overlap the
       GIL-held extraction pass with the next tile's GEMM
       (``source="auto"``).

    The plan also owns **tile sizing**: :meth:`tile_rows` picks the
    largest tile edge whose distance block plus operand panels fit
    ``tile_budget_bytes`` -- the cache-residency knob that dominates
    single-core throughput.  Kernels use it whenever the caller leaves
    ``row_block=None``; the choice never changes the pair set, and on the
    seed datasets it is bit-identical distance-for-distance too (pinned
    by tests/test_workers.py).
    """

    n_workers: int
    cpu_count: int
    blas_threads: int | None
    source: str  # "serial" | "explicit" | "env" | "auto"
    tile_budget_bytes: int = TILE_CACHE_BUDGET_BYTES
    #: Process-pool start method preference: ``"auto"`` (fork where the
    #: platform offers it, else spawn), ``"fork"``, or ``"spawn"``.  Kept
    #: as the *preference* -- :meth:`resolved_start_method` consults
    #: ``REPRO_START_METHOD`` at use time, so an env override set after
    #: the plan was resolved still takes effect.
    start_method: str = "auto"

    #: Cap on topology-derived worker counts (explicit requests and the
    #: REPRO_WORKERS override are taken verbatim).
    MAX_AUTO_WORKERS = 8

    @property
    def parallel(self) -> bool:
        return self.n_workers > 1

    @classmethod
    def resolve(cls, workers: "int | str | WorkerPlan | None" = 0) -> "WorkerPlan":
        """Normalize a ``workers`` argument into a :class:`WorkerPlan`."""
        if isinstance(workers, WorkerPlan):
            return workers
        cpu = os.cpu_count() or 1
        blas = blas_thread_count()
        if workers is None or workers == 0:
            return cls(1, cpu, blas, "serial")
        if isinstance(workers, str):
            if workers != "auto":
                raise ValueError(
                    f"workers must be an int, 'auto', or a WorkerPlan; got {workers!r}"
                )
            workers = -1
        workers = int(workers)
        if workers > 0:
            return cls(workers, cpu, blas, "explicit")
        if workers != -1:
            # Only -1 means "auto"; other negatives are almost certainly
            # sign typos or failed arithmetic and must not silently
            # resolve to a topology-derived count.
            raise ValueError(
                f"workers must be >= 0, -1/'auto', or a WorkerPlan; got {workers}"
            )
        env = os.environ.get("REPRO_WORKERS", "").strip()
        if env:
            try:
                n = int(env)
            except ValueError as exc:
                raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}") from exc
            if n < 1:
                # Same reasoning as the explicit-argument check: a
                # negative override is a typo, not a request for serial.
                raise ValueError(
                    f"REPRO_WORKERS must be a positive integer, got {env!r}"
                )
            return cls(n, cpu, blas, "env")
        if blas is not None:
            n = max(1, cpu // blas)
        else:
            n = 2 if cpu >= 4 else 1
        return cls(min(n, cls.MAX_AUTO_WORKERS), cpu, blas, "auto")

    def tile_rows(
        self,
        n: int,
        dim: int,
        *,
        d2_itemsize: int = 8,
        work_itemsize: int = 8,
        quantum: int = 128,
    ) -> int:
        """Cache-fit tile edge: largest ``rows`` with
        ``rows^2 * d2_itemsize + 2 * rows * dim * work_itemsize`` under
        the budget, rounded down to a multiple of ``quantum`` (a kernel's
        natural dispatch granule) and clamped to ``[1, n]``.
        """
        a = float(max(d2_itemsize, 1))
        b = 2.0 * max(dim, 1) * max(work_itemsize, 1)
        budget = float(max(self.tile_budget_bytes, 1))
        rows = int(((b * b + 4.0 * a * budget) ** 0.5 - b) / (2.0 * a))
        if rows >= quantum:
            rows -= rows % quantum
        return max(1, min(rows, max(n, 1)))

    def resolved_start_method(self) -> str:
        """The concrete pool start method this plan will use.

        Resolution order: ``REPRO_START_METHOD`` env var, then the plan's
        ``start_method`` field, with ``"auto"`` meaning fork where the
        platform offers it and spawn otherwise (macOS/Windows, or fork
        disabled).  See :func:`resolve_start_method`.
        """
        return resolve_start_method(self.start_method)

    def as_dict(self) -> dict:
        """JSON-friendly view (benchmarks and the CLI report this)."""
        return {
            "n_workers": self.n_workers,
            "cpu_count": self.cpu_count,
            "blas_threads": self.blas_threads,
            "source": self.source,
            "tile_budget_bytes": self.tile_budget_bytes,
            "start_method": self.resolved_start_method(),
        }


def norm_expansion_sq_dists(
    s_row: np.ndarray, s_col: np.ndarray, gram: np.ndarray
) -> np.ndarray:
    """``max(0, (s_i + s_j) - 2*gram)`` computed in place on ``gram``.

    The shared Step-3 recombination of every kernel.  Elementwise order is
    exactly ``(s_row[:, None] + s_col[None, :]) - 2.0 * gram`` so results
    are bit-identical to the naive expression in any precision, but only
    one temporary (the broadcast norm sum) is allocated; the scale,
    subtract, and clamp reuse the gram buffer.
    """
    t = s_row[:, None] + s_col[None, :]
    np.multiply(gram, 2.0, out=gram)
    np.subtract(t, gram, out=gram)
    return np.maximum(gram, 0.0, out=gram)


def iter_symmetric_tiles(
    n: int, row_block: int
) -> Iterator[tuple[int, int, int, int]]:
    """Upper-triangle tile coordinates ``(r0, r1, c0, c1)`` with ``c0 >= r0``."""
    for r0 in range(0, n, row_block):
        r1 = min(r0 + row_block, n)
        for c0 in range(r0, n, row_block):
            yield r0, r1, c0, min(c0 + row_block, n)


def _extract_pairs(
    d2: np.ndarray,
    r0: int,
    c0: int,
    eps2: float,
    store_distances: bool,
    *,
    clear_diagonal: bool | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Extract the in-range pairs (global indices) of one evaluated tile.

    ``clear_diagonal`` defaults to the self-join convention (the diagonal
    of an ``r0 == c0`` tile holds self pairs); two-source executors pass
    ``False`` because a coincidental ``r0 == c0`` relates *different*
    points of the two sets.
    """
    mask = d2 <= eps2
    if clear_diagonal if clear_diagonal is not None else c0 == r0:
        np.fill_diagonal(mask, False)
    ii, jj = np.nonzero(mask)
    gi = ii.astype(np.int64)
    gi += r0
    gj = jj.astype(np.int64)
    gj += c0
    dd = d2[ii, jj].astype(np.float32) if store_distances else None
    return gi, gj, dd


def _extract_tile(
    tile_fn: TileFn,
    eps2: float,
    store_distances: bool,
    tile: tuple[int, int, int, int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Evaluate one tile and extract its in-range pairs (global indices)."""
    r0, r1, c0, c1 = tile
    return _extract_pairs(tile_fn(r0, r1, c0, c1), r0, c0, eps2, store_distances)


def _run_tiles(
    tiles: list,
    evaluate: Callable[[Any], Any],
    commit: Callable[[Any, Any], None],
    n_workers: int,
) -> None:
    """Evaluate tiles (optionally on a thread pool) and commit in order.

    The shared dispatch loop of the tiled executors: with more than one
    worker, a bounded window (~2x workers) of tiles is kept in flight so
    finished-but-uncommitted results never pile up, and ``commit`` runs on
    the calling thread in strict submission order -- the determinism lever
    that makes parallel output bit-identical to serial.
    """
    if n_workers > 1 and len(tiles) > 1:
        window = 2 * int(n_workers)
        pending: deque = deque()
        with ThreadPoolExecutor(max_workers=int(n_workers)) as pool:
            for tile in tiles:
                pending.append((tile, pool.submit(evaluate, tile)))
                if len(pending) >= window:
                    head, fut = pending.popleft()
                    commit(head, fut.result())
            while pending:
                head, fut = pending.popleft()
                commit(head, fut.result())
    else:
        for tile in tiles:
            commit(tile, evaluate(tile))


class _InFlightWindow:
    """Bounded in-flight tile window with in-order commit.

    The streaming executors' analogue of :func:`_run_tiles`: tiles are
    evaluated on ``pool`` (or inline when ``pool`` is None) while commits
    run on the calling thread in strict submission order, with at most
    ``limit`` results outstanding.  ``commit(result, *payload)`` receives
    whatever payload rode along with the submission (block byte counts,
    tile coordinates).
    """

    def __init__(self, pool: ThreadPoolExecutor | None, limit: int, commit) -> None:
        self._pool = pool
        self._limit = limit
        self._commit = commit
        self._pending: deque = deque()

    def run(self, fn, args: tuple, payload: tuple) -> None:
        if self._pool is None:
            self._commit(fn(*args), *payload)
            return
        self._pending.append((self._pool.submit(fn, *args), payload))
        self.drain(self._limit)

    def drain(self, limit: int = 0) -> None:
        while len(self._pending) > limit:
            fut, payload = self._pending.popleft()
            self._commit(fut.result(), *payload)


def symmetric_self_join(
    n: int,
    eps2: float,
    tile_fn: TileFn,
    *,
    plan: "TilePlan | None" = None,
    row_block: int = 2048,
    store_distances: bool = True,
    workers: "int | str | WorkerPlan | None" = 0,
) -> PairAccumulator:
    """Tiled self-join over the tile grid of a :class:`TilePlan`.

    With a symmetric plan (the default) only tiles with ``c0 >= r0`` are
    evaluated and off-diagonal tiles emit both pair directions from the
    one evaluation; with ``plan.symmetric=False`` (the device-schedule
    form the timing models share) every tile of the full grid is
    evaluated and nothing is mirrored -- the two modes are bit-identical
    because ``dist(i, j) == dist(j, i)`` holds bitwise.  Diagonal tiles
    get their self-pair diagonal cleared either way.

    Parameters
    ----------
    n:
        Number of points.
    eps2:
        Squared radius in the kernel's working precision (pairs with
        ``d2 <= eps2`` are kept, matching every kernel's seed semantics).
    tile_fn:
        Kernel numerics; see :data:`TileFn`.
    plan:
        Explicit tile schedule; overrides ``row_block``.  ``plan.n`` must
        equal ``n``.
    row_block:
        Tile edge when no plan is given (performance knob only -- results
        are identical for any value).
    store_distances:
        Track per-pair squared distances.
    workers:
        Worker-pool request resolved via :meth:`WorkerPlan.resolve`
        (0/None serial, N threads, ``"auto"`` for the topology plan).
        Pairs are committed in tile order, so results are deterministic
        and identical to the serial path.
    """
    if plan is None:
        plan = TilePlan(n=n, row_block=int(row_block))
    elif plan.n != n:
        raise ValueError(f"plan covers n={plan.n}, join has n={n}")
    acc = PairAccumulator(store_distances=store_distances)
    tiles = list(plan.tile_bounds())
    mirror = plan.symmetric

    def evaluate(tile: tuple[int, int, int, int]):
        return _extract_tile(tile_fn, eps2, store_distances, tile)

    def commit(
        tile: tuple[int, int, int, int],
        extracted: tuple[np.ndarray, np.ndarray, np.ndarray | None],
    ) -> None:
        gi, gj, dd = extracted
        acc.append(gi, gj, dd)
        if mirror and tile[2] != tile[0]:  # mirrored direction, off-diagonal
            acc.append(gj, gi, dd)

    hooks = trace_mod.current_hooks()
    if hooks is not None:
        # Wrap rather than branch per tile: `evaluate` may run on pool
        # threads, so the hooks ride the closure, not the context.
        base_evaluate, base_commit = evaluate, commit

        def evaluate(tile):
            t0 = time.perf_counter()
            out = base_evaluate(tile)
            hooks.record("gemm", time.perf_counter() - t0)
            return out

        def commit(tile, extracted):
            t0 = time.perf_counter()
            base_commit(tile, extracted)
            hooks.record("commit", time.perf_counter() - t0)

    _run_tiles(tiles, evaluate, commit, WorkerPlan.resolve(workers).n_workers)
    return acc


@dataclass(frozen=True)
class TilePlan:
    """Schedule of row-block loads for an out-of-core symmetric self-join.

    The plan owns the tile geometry of the tiled executors: the dataset
    is cut into ``ceil(n / row_block)`` row blocks, and the upper triangle
    of the block grid (``cj >= ri``) is evaluated exactly like
    :func:`iter_symmetric_tiles` does in memory -- the two paths share the
    same tile coordinates, which is half of the bit-identity argument
    (docs/ARCHITECTURE.md has the other half).  With ``symmetric=False``
    the plan instead schedules **every** tile of the full block grid with
    no mirroring -- the device dispatch shape (a GPU work queue issues all
    block tiles), which the kernels' timing models share via their
    ``tile_plan()`` / ``cost()`` methods so modeled and executed tile
    counts cannot drift apart.

    A block is loaded once per *row stripe* it participates in: processing
    row block ``ri`` loads block ``ri`` (kept resident for the whole
    stripe) and then streams column blocks ``ri+1 .. nb-1`` through, each
    discarded after its tile.  Peak residency is therefore bounded by
    :data:`RESIDENT_BLOCKS` blocks regardless of ``n`` (streaming with
    ``workers > 1`` keeps up to one extra column block in flight per
    worker; see :func:`streaming_self_join`).
    """

    n: int
    row_block: int
    symmetric: bool = True

    #: Worst-case simultaneously resident blocks: the pinned row block, the
    #: current column block, and the prefetched next block (whose raw
    #: float64 form and prepared state briefly coexist inside ``prepare``).
    RESIDENT_BLOCKS = 4

    def __post_init__(self) -> None:
        if self.n < 0 or self.row_block <= 0:
            raise ValueError("need n >= 0 and row_block > 0")

    @classmethod
    def from_budget(
        cls,
        n: int,
        dim: int,
        memory_budget_bytes: int,
        *,
        itemsize: int = 8,
        extra_blocks: int = 0,
    ) -> "TilePlan":
        """Choose ``row_block`` so peak resident data fits the budget.

        The budget covers the streamed blocks only (``RESIDENT_BLOCKS``
        float64 blocks of ``row_block`` rows, plus one spare column per row
        for the per-block norm vectors); the result pairs themselves grow
        with the join's output and are accounted separately by
        ``PairAccumulator.nbytes``.  ``extra_blocks`` widens the
        accounting for executors that keep additional blocks alive -- the
        streaming executors pass their in-flight worker window here, so a
        ``memory_budget_bytes`` stays honored with ``workers > 1``.
        """
        if memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        per_row = max(1, (dim + 1) * itemsize)
        blocks = cls.RESIDENT_BLOCKS + max(0, int(extra_blocks))
        row_block = memory_budget_bytes // (blocks * per_row)
        return cls(n=n, row_block=int(max(1, min(row_block, max(n, 1)))))

    @property
    def n_blocks(self) -> int:
        return -(-self.n // self.row_block) if self.n else 0

    @property
    def n_tiles(self) -> int:
        nb = self.n_blocks
        return nb * (nb + 1) // 2 if self.symmetric else nb * nb

    def block_bounds(self, bi: int) -> tuple[int, int]:
        """Row range ``(r0, r1)`` of block ``bi``."""
        r0 = bi * self.row_block
        return r0, min(r0 + self.row_block, self.n)

    def blocks(self) -> Iterator[tuple[int, int]]:
        for bi in range(self.n_blocks):
            yield self.block_bounds(bi)

    def tiles(self) -> Iterator[tuple[int, int]]:
        """Block-index pairs ``(ri, cj)`` in execution order.

        Upper triangle (``cj >= ri``) for symmetric plans, the full grid
        row-major otherwise.
        """
        for ri in range(self.n_blocks):
            for cj in range(ri if self.symmetric else 0, self.n_blocks):
                yield ri, cj

    def tile_bounds(self) -> Iterator[tuple[int, int, int, int]]:
        """Tile coordinates ``(r0, r1, c0, c1)`` in execution order.

        The symmetric form yields exactly what
        :func:`iter_symmetric_tiles` yields -- one geometry shared by the
        in-memory executor, the streaming executor and (through the
        kernels' ``tile_plan()``) the timing models.
        """
        for ri, cj in self.tiles():
            r0, r1 = self.block_bounds(ri)
            c0, c1 = self.block_bounds(cj)
            yield r0, r1, c0, c1

    def peak_resident_bytes(self, dim: int, *, itemsize: int = 8) -> int:
        """Upper bound on simultaneously resident streamed-block bytes."""
        return self.RESIDENT_BLOCKS * self.row_block * (dim + 1) * itemsize


@dataclass
class StreamStats:
    """What a streaming executor actually did (for tests and reporting).

    ``plan`` is a :class:`TilePlan` for self-joins and a
    :class:`RectTilePlan` for two-source joins; source-backed index builds
    (``GridIndex.from_source``) account their pass loads here too.
    """

    plan: Any
    blocks_loaded: int = 0
    tiles_evaluated: int = 0
    peak_resident_bytes: int = 0
    _resident_bytes: int = field(default=0, repr=False)
    _lock: Any = field(default_factory=threading.Lock, repr=False)

    def _acquire(self, nbytes: int) -> None:
        # The prefetch thread and the main loop both account blocks.
        with self._lock:
            self._resident_bytes += nbytes
            if self._resident_bytes > self.peak_resident_bytes:
                self.peak_resident_bytes = self._resident_bytes

    def _release(self, nbytes: int) -> None:
        with self._lock:
            self._resident_bytes -= nbytes


def _state_nbytes(state: Any) -> int:
    """Total ndarray bytes reachable from a prepared block state."""
    if isinstance(state, np.ndarray):
        return state.nbytes
    if isinstance(state, (tuple, list)):
        return sum(_state_nbytes(s) for s in state)
    return 0


def streaming_self_join(
    source,
    eps2: float,
    prepare: BlockPrepareFn,
    block_sq_dists: BlockDistFn,
    *,
    plan: TilePlan | None = None,
    row_block: int = 2048,
    memory_budget_bytes: int | None = None,
    store_distances: bool = True,
    prefetch: bool = True,
    acc: PairAccumulator | None = None,
    workers: "int | str | WorkerPlan | None" = 0,
) -> tuple[PairAccumulator, StreamStats]:
    """Out-of-core symmetric self-join over a :class:`~repro.data.source.DatasetSource`.

    Same tile geometry and pair extraction as :func:`symmetric_self_join`,
    but the dataset never has to be resident: row blocks are loaded from
    ``source`` on demand following a :class:`TilePlan`, the next block is
    prefetched on a background thread while the current tile's GEMM runs,
    and at most :data:`TilePlan.RESIDENT_BLOCKS` blocks are alive at once.
    Results are bit-identical to the in-memory executor for the kernels'
    numerics (per-row preparation and per-tile GEMM shapes are unchanged;
    tests/test_streaming.py pins this).

    Parameters
    ----------
    source:
        :class:`repro.data.source.DatasetSource` (or anything exposing
        ``n``, ``dim`` and ``load_block``).
    eps2:
        Squared radius in the kernel's working precision.
    prepare:
        Per-block kernel state builder; see :data:`BlockPrepareFn`.  Called
        once per block *load* (on the prefetch thread when prefetching).
    block_sq_dists:
        Kernel numerics over two prepared states; see :data:`BlockDistFn`.
    plan:
        Explicit tile plan; overrides ``row_block``/``memory_budget_bytes``.
    row_block:
        Tile edge when no plan/budget is given.
    memory_budget_bytes:
        When given, derive the plan with :meth:`TilePlan.from_budget` so
        peak resident streamed data stays under the budget.
    store_distances:
        Track per-pair squared distances.
    prefetch:
        Overlap the next block's load+prepare with the current GEMM
        (single background thread; deterministic commit order either way).
    acc:
        Emit into this accumulator instead of a fresh one -- the hook for
        disk-spilling accumulators
        (``PairAccumulator(spill_threshold_bytes=...)``) when the output
        itself outgrows memory.  ``store_distances`` is ignored when an
        accumulator is supplied.
    workers:
        Worker-pool request (:meth:`WorkerPlan.resolve`): with more than
        one worker, tile GEMMs + extraction run on a thread pool and
        overlap the block prefetch, with pairs committed in strict tile
        order -- bit-identical to serial.  Each in-flight tile keeps its
        column block alive; when the plan is derived from
        ``memory_budget_bytes`` the extra blocks are folded into the
        accounting (``TilePlan.from_budget(extra_blocks=...)``) so the
        budget stays honored, while an explicit ``plan``/``row_block``
        accepts the up-to-``workers``-blocks residency growth.

    Returns
    -------
    (PairAccumulator, StreamStats)
        The accumulated pairs and the observed load/residency statistics.
    """
    n, dim = int(source.n), int(source.dim)
    wp = WorkerPlan.resolve(workers)
    if plan is None:
        if memory_budget_bytes is not None:
            # In-flight worker tiles each pin an extra column block;
            # widen the residency accounting so the budget stays honored.
            plan = TilePlan.from_budget(
                n, dim, int(memory_budget_bytes),
                extra_blocks=wp.n_workers if wp.parallel else 0,
            )
        else:
            plan = TilePlan(n=n, row_block=int(row_block))
    if not plan.symmetric:
        raise ValueError("streaming_self_join requires a symmetric TilePlan")
    stats = StreamStats(plan=plan)
    if acc is None:
        acc = PairAccumulator(store_distances=store_distances)
    store_distances = acc.store_distances
    nb = plan.n_blocks
    if nb == 0:
        return acc, stats

    def load(bi: int) -> tuple[Any, int]:
        r0, r1 = plan.block_bounds(bi)
        raw = source.load_block(r0, r1)
        stats._acquire(raw.nbytes)
        state = prepare(raw)
        nbytes = _state_nbytes(state)
        stats._acquire(nbytes)
        stats._release(raw.nbytes)  # raw block dies with this frame
        stats.blocks_loaded += 1
        return state, nbytes

    # Block-load sequence: row block ri, then its column blocks ri+1..nb-1,
    # for each row stripe.  A 1-deep pipeline prefetches loads[k+1] while
    # tile k computes.
    loads: list[int] = []
    for ri in range(nb):
        loads.append(ri)
        loads.extend(range(ri + 1, nb))
    pool = ThreadPoolExecutor(max_workers=1) if prefetch and len(loads) > 1 else None
    gemm_pool = ThreadPoolExecutor(max_workers=wp.n_workers) if wp.parallel else None
    try:
        futures: deque = deque()
        cursor = 0

        def schedule_next() -> None:
            nonlocal cursor
            if pool is not None and cursor < len(loads):
                futures.append(pool.submit(load, loads[cursor]))
                cursor += 1

        def next_block() -> tuple[Any, int]:
            nonlocal cursor
            if pool is None:
                blk = load(loads[cursor])
                cursor += 1
                return blk
            if not futures:
                schedule_next()
            blk = futures.popleft().result()
            schedule_next()  # keep the pipeline primed
            return blk

        def eval_tile(row_state, col_state, r0: int, c0: int):
            d2 = block_sq_dists(row_state, col_state)
            return _extract_pairs(d2, r0, c0, eps2, store_distances)

        def commit_tile(extracted, r0: int, c0: int, col_nbytes: int) -> None:
            gi, gj, dd = extracted
            acc.append(gi, gj, dd)
            if c0 != r0:
                acc.append(gj, gi, dd)
            stats.tiles_evaluated += 1
            if col_nbytes:
                stats._release(col_nbytes)

        # In-flight tile window (workers > 1): futures keep their column
        # block alive until commit, and commits run here in submission
        # order -- the same determinism lever as the in-memory executor.
        window = _InFlightWindow(gemm_pool, wp.n_workers, commit_tile)

        schedule_next()
        for ri in range(nb):
            row_state, row_nbytes = next_block()
            r0, r1 = plan.block_bounds(ri)
            for cj in range(ri, nb):
                if cj == ri:
                    col_state, col_nbytes = row_state, 0
                else:
                    col_state, col_nbytes = next_block()
                c0, _c1 = plan.block_bounds(cj)
                window.run(
                    eval_tile, (row_state, col_state, r0, c0),
                    (r0, c0, col_nbytes),
                )
            # The stripe's tiles all read row_state: finish them before
            # the pinned row block's bytes are released.
            window.drain()
            stats._release(row_nbytes)
    except BaseException:
        # A failed stream's partial output is garbage; drop any spilled
        # chunk files with it so prefetch/tile errors do not leak disk.
        acc.cleanup()
        raise
    finally:
        if gemm_pool is not None:
            gemm_pool.shutdown(wait=True, cancel_futures=True)
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    return acc, stats


@dataclass(frozen=True)
class RectTilePlan:
    """Schedule of block loads for an out-of-core two-source join ``A x B``.

    The rectangular counterpart of :class:`TilePlan`: the left set's
    ``n_rows`` rows are cut into ``row_block``-sized blocks and the right
    set's ``n_cols`` rows into ``col_block``-sized blocks, independently --
    there is no symmetry to exploit, so **every** ``(ri, cj)`` block pair
    is a tile and nothing is mirrored.  Processing row block ``ri`` pins it
    for the whole stripe while all of ``B``'s column blocks stream through,
    so ``A`` is read once and ``B`` once per row stripe; peak residency is
    bounded by :data:`RESIDENT_BLOCKS` blocks regardless of either size.
    """

    n_rows: int
    n_cols: int
    row_block: int
    col_block: int

    #: Worst-case simultaneously resident blocks: the pinned row block, the
    #: current column block, and the prefetched next block (whose raw
    #: float64 form and prepared state briefly coexist inside ``prepare``).
    RESIDENT_BLOCKS = 4

    def __post_init__(self) -> None:
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("need n_rows >= 0 and n_cols >= 0")
        if self.row_block <= 0 or self.col_block <= 0:
            raise ValueError("row_block and col_block must be positive")

    @classmethod
    def from_budget(
        cls,
        n_rows: int,
        n_cols: int,
        dim: int,
        memory_budget_bytes: int,
        *,
        itemsize: int = 8,
        extra_blocks: int = 0,
    ) -> "RectTilePlan":
        """Choose equal block edges so peak resident data fits the budget.

        Same accounting as :meth:`TilePlan.from_budget`: the budget covers
        the :data:`RESIDENT_BLOCKS` streamed float64 blocks (plus one spare
        column per row for per-block norm vectors), widened by
        ``extra_blocks`` for in-flight worker tiles; result growth is
        accounted separately by ``PairAccumulator.nbytes``.
        """
        if memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        per_row = max(1, (dim + 1) * itemsize)
        blocks = cls.RESIDENT_BLOCKS + max(0, int(extra_blocks))
        block = memory_budget_bytes // (blocks * per_row)
        block = int(max(1, block))
        return cls(
            n_rows=n_rows,
            n_cols=n_cols,
            row_block=min(block, max(n_rows, 1)),
            col_block=min(block, max(n_cols, 1)),
        )

    @property
    def n_row_blocks(self) -> int:
        return -(-self.n_rows // self.row_block) if self.n_rows else 0

    @property
    def n_col_blocks(self) -> int:
        return -(-self.n_cols // self.col_block) if self.n_cols else 0

    @property
    def n_tiles(self) -> int:
        return self.n_row_blocks * self.n_col_blocks

    def row_bounds(self, ri: int) -> tuple[int, int]:
        """Row range ``(r0, r1)`` of left-set block ``ri``."""
        r0 = ri * self.row_block
        return r0, min(r0 + self.row_block, self.n_rows)

    def col_bounds(self, cj: int) -> tuple[int, int]:
        """Row range ``(c0, c1)`` of right-set block ``cj``."""
        c0 = cj * self.col_block
        return c0, min(c0 + self.col_block, self.n_cols)

    def tiles(self) -> Iterator[tuple[int, int]]:
        """Block-index pairs ``(ri, cj)`` in execution order (row-major)."""
        for ri in range(self.n_row_blocks):
            for cj in range(self.n_col_blocks):
                yield ri, cj

    def peak_resident_bytes(self, dim: int, *, itemsize: int = 8) -> int:
        """Upper bound on simultaneously resident streamed-block bytes."""
        edge = max(self.row_block, self.col_block)
        return self.RESIDENT_BLOCKS * edge * (dim + 1) * itemsize


def iter_rect_tiles(
    n_rows: int, n_cols: int, row_block: int, col_block: int
) -> Iterator[tuple[int, int, int, int]]:
    """All tile coordinates ``(r0, r1, c0, c1)`` of the A x B grid, row-major."""
    for r0 in range(0, n_rows, row_block):
        r1 = min(r0 + row_block, n_rows)
        for c0 in range(0, n_cols, col_block):
            yield r0, r1, c0, min(c0 + col_block, n_cols)


def rect_join(
    n_rows: int,
    n_cols: int,
    eps2: float,
    tile_fn: TileFn,
    *,
    row_block: int = 2048,
    col_block: int | None = None,
    store_distances: bool = True,
    acc: PairAccumulator | None = None,
    workers: "int | str | WorkerPlan | None" = 0,
) -> PairAccumulator:
    """In-memory two-source join: every tile of the rectangular grid.

    The A x B counterpart of :func:`symmetric_self_join`.  ``tile_fn(r0,
    r1, c0, c1)`` returns the squared-distance block between rows
    ``[r0:r1]`` of the left set and rows ``[c0:c1]`` of the right set;
    pairs are emitted in the single direction ``(i in A, j in B)`` and the
    tile diagonal is *never* cleared -- equal indices address different
    points of the two sets.  ``workers`` dispatches tile evaluation to a
    thread pool with in-order commit, exactly like the symmetric executor
    (bit-identical to serial).
    """
    if acc is None:
        acc = PairAccumulator(store_distances=store_distances)
    store_distances = acc.store_distances
    if col_block is None:
        col_block = row_block
    tiles = list(iter_rect_tiles(n_rows, n_cols, row_block, col_block))

    def evaluate(tile: tuple[int, int, int, int]):
        r0, r1, c0, c1 = tile
        return _extract_pairs(
            tile_fn(r0, r1, c0, c1), r0, c0, eps2, store_distances,
            clear_diagonal=False,
        )

    def commit(_tile, extracted) -> None:
        gi, gj, dd = extracted
        acc.append(gi, gj, dd)

    _run_tiles(tiles, evaluate, commit, WorkerPlan.resolve(workers).n_workers)
    return acc


def streaming_join(
    source_a,
    source_b,
    eps2: float,
    prepare: BlockPrepareFn,
    block_sq_dists: BlockDistFn,
    *,
    plan: RectTilePlan | None = None,
    row_block: int = 2048,
    col_block: int | None = None,
    memory_budget_bytes: int | None = None,
    store_distances: bool = True,
    prefetch: bool = True,
    acc: PairAccumulator | None = None,
    workers: "int | str | WorkerPlan | None" = 0,
) -> tuple[PairAccumulator, StreamStats]:
    """Out-of-core two-source join over two :class:`~repro.data.source.DatasetSource`\\ s.

    Same tile geometry and pair extraction as :func:`rect_join`, but
    neither dataset has to be resident: each row block of ``source_a`` is
    pinned for one stripe while all of ``source_b``'s column blocks stream
    through, with the next block (of either source -- the prefetch
    pipeline spans both) loaded and prepared on a background thread while
    the current tile's GEMM runs.  At most
    :data:`RectTilePlan.RESIDENT_BLOCKS` blocks are alive at once, and
    results are bit-identical to :func:`rect_join` at the same plan for
    the kernels' numerics (per-block preparation is row-local and per-tile
    GEMM shapes are unchanged; tests/test_two_source.py pins this).

    Parameters
    ----------
    source_a, source_b:
        Left (query) and right dataset sources; their dimensionalities
        must match.
    eps2:
        Squared radius in the kernel's working precision.
    prepare:
        Per-block kernel state builder, applied to blocks of *both*
        sources; see :data:`BlockPrepareFn`.
    block_sq_dists:
        Kernel numerics over a prepared A-block and B-block.
    plan:
        Explicit rectangular plan; overrides
        ``row_block``/``col_block``/``memory_budget_bytes``.
    row_block, col_block:
        Independent block edges when no plan/budget is given
        (``col_block`` defaults to ``row_block``).
    memory_budget_bytes:
        Derive the plan with :meth:`RectTilePlan.from_budget` so peak
        resident streamed data stays under the budget.
    store_distances:
        Track per-pair squared distances (ignored when ``acc`` is given).
    prefetch:
        Overlap the next block's load+prepare with the current GEMM.
    acc:
        Emit into this accumulator (e.g. a disk-spilling one) instead of a
        fresh in-memory accumulator.
    workers:
        Worker-pool request (:meth:`WorkerPlan.resolve`): tile GEMMs +
        extraction on a thread pool, overlapped with the cross-source
        prefetch, committed in strict tile order (bit-identical to
        serial).  As for :func:`streaming_self_join`, budget-derived
        plans fold the in-flight worker blocks into the residency
        accounting; explicit plans accept the growth.

    Returns
    -------
    (PairAccumulator, StreamStats)
        Accumulated ``(i in A, j in B)`` pairs plus load/residency stats.
    """
    n_a, dim_a = int(source_a.n), int(source_a.dim)
    n_b, dim_b = int(source_b.n), int(source_b.dim)
    if dim_a != dim_b:
        raise ValueError(
            f"source dimensionalities disagree: {dim_a} != {dim_b}"
        )
    wp = WorkerPlan.resolve(workers)
    if plan is None:
        if memory_budget_bytes is not None:
            # As in streaming_self_join: in-flight worker tiles pin extra
            # column blocks, so widen the accounting to keep the budget.
            plan = RectTilePlan.from_budget(
                n_a, n_b, dim_a, int(memory_budget_bytes),
                extra_blocks=wp.n_workers if wp.parallel else 0,
            )
        else:
            plan = RectTilePlan(
                n_rows=n_a,
                n_cols=n_b,
                row_block=int(row_block),
                col_block=int(col_block if col_block is not None else row_block),
            )
    stats = StreamStats(plan=plan)
    if acc is None:
        acc = PairAccumulator(store_distances=store_distances)
    store_distances = acc.store_distances
    nbr, nbc = plan.n_row_blocks, plan.n_col_blocks
    if nbr == 0 or nbc == 0:
        return acc, stats

    def load(which: str, bi: int) -> tuple[Any, int]:
        if which == "a":
            r0, r1 = plan.row_bounds(bi)
            raw = source_a.load_block(r0, r1)
        else:
            c0, c1 = plan.col_bounds(bi)
            raw = source_b.load_block(c0, c1)
        stats._acquire(raw.nbytes)
        state = prepare(raw)
        nbytes = _state_nbytes(state)
        stats._acquire(nbytes)
        stats._release(raw.nbytes)  # raw block dies with this frame
        stats.blocks_loaded += 1
        return state, nbytes

    # Block-load sequence: row block ri of A, then every column block of B,
    # per row stripe.  The 1-deep prefetch pipeline spans both sources --
    # while the last tile of a stripe computes, the *next A row block* is
    # already loading.
    loads: list[tuple[str, int]] = []
    for ri in range(nbr):
        loads.append(("a", ri))
        loads.extend(("b", cj) for cj in range(nbc))
    pool = ThreadPoolExecutor(max_workers=1) if prefetch and len(loads) > 1 else None
    gemm_pool = ThreadPoolExecutor(max_workers=wp.n_workers) if wp.parallel else None
    try:
        futures: deque = deque()
        cursor = 0

        def schedule_next() -> None:
            nonlocal cursor
            if pool is not None and cursor < len(loads):
                futures.append(pool.submit(load, *loads[cursor]))
                cursor += 1

        def next_block() -> tuple[Any, int]:
            nonlocal cursor
            if pool is None:
                blk = load(*loads[cursor])
                cursor += 1
                return blk
            if not futures:
                schedule_next()
            blk = futures.popleft().result()
            schedule_next()  # keep the pipeline primed
            return blk

        def eval_tile(row_state, col_state, r0: int, c0: int):
            d2 = block_sq_dists(row_state, col_state)
            return _extract_pairs(
                d2, r0, c0, eps2, store_distances, clear_diagonal=False
            )

        def commit_tile(extracted, col_nbytes: int) -> None:
            gi, gj, dd = extracted
            acc.append(gi, gj, dd)
            stats.tiles_evaluated += 1
            stats._release(col_nbytes)

        # In-flight tile window (workers > 1); in-order commit on this
        # thread keeps parallel output bit-identical to serial.
        window = _InFlightWindow(gemm_pool, wp.n_workers, commit_tile)

        schedule_next()
        for ri in range(nbr):
            row_state, row_nbytes = next_block()
            r0, _r1 = plan.row_bounds(ri)
            for cj in range(nbc):
                col_state, col_nbytes = next_block()
                c0, _c1 = plan.col_bounds(cj)
                window.run(
                    eval_tile, (row_state, col_state, r0, c0), (col_nbytes,)
                )
            window.drain()  # stripe tiles read row_state; finish first
            stats._release(row_nbytes)
    except BaseException:
        # A failed stream's partial output is garbage; drop any spilled
        # chunk files with it so prefetch/tile errors do not leak disk.
        acc.cleanup()
        raise
    finally:
        if gemm_pool is not None:
            gemm_pool.shutdown(wait=True, cancel_futures=True)
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
    return acc, stats


def candidate_self_join(
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    dist_fn: GroupDistFn,
    eps2: float,
    *,
    store_distances: bool = True,
    candidate_chunk: int | None = None,
    on_group: Callable[[np.ndarray, np.ndarray], None] | None = None,
    acc: PairAccumulator | None = None,
) -> PairAccumulator:
    """Index-backed self-join over ``(members, candidates)`` groups.

    Parameters
    ----------
    groups:
        Iterable of ``(members, candidates)`` global-index arrays, as
        produced by ``GridIndex.iter_cells`` or ``MultiSpaceTree.iter_groups``.
    dist_fn:
        Kernel numerics; see :data:`GroupDistFn`.
    eps2:
        Squared radius in the kernel's working precision.
    store_distances:
        Track per-pair squared distances.
    candidate_chunk:
        Evaluate at most this many candidates per ``dist_fn`` call to bound
        the temporary block (None: whole group at once).
    on_group:
        Statistics hook invoked once per nonempty group *before* evaluation
        -- kernels use it to tally candidate counts / sampling without a
        second index pass.
    acc:
        Emit into this accumulator (e.g. a disk-spilling one) instead of
        a fresh one; ``store_distances`` is ignored when given.
    """
    if acc is None:
        acc = PairAccumulator(store_distances=store_distances)
    store_distances = acc.store_distances
    hooks = trace_mod.current_hooks()
    if hooks is not None:
        groups = _timed_groups(groups, hooks)
    for members, candidates in groups:
        if members.size == 0 or candidates.size == 0:
            continue
        if on_group is not None:
            on_group(members, candidates)
        chunk = candidate_chunk or candidates.size
        for c0 in range(0, candidates.size, chunk):
            cand = candidates[c0 : c0 + chunk]
            d2 = dist_fn(members, cand)
            t0 = time.perf_counter() if hooks is not None else 0.0
            _emit_group_pairs(
                acc, d2, members, cand, eps2, store_distances
            )
            if hooks is not None:
                hooks.record("commit", time.perf_counter() - t0)
    return acc


def _emit_group_pairs(
    acc: PairAccumulator,
    d2: np.ndarray,
    members: np.ndarray,
    candidates: np.ndarray,
    eps2: float,
    store_distances: bool,
    *,
    drop_self: bool = True,
) -> None:
    """Filter one evaluated candidate block and append its in-range pairs.

    The single definition of the group pair-extraction semantics (eps2
    inclusive, float32 distances) shared by the per-group executor, the
    batched executor's large-group bypass, and the two-source executor.
    ``drop_self`` removes ``gi == gj`` pairs -- the self-join convention;
    two-source joins keep them because equal indices address different
    points.
    """
    mask = d2 <= eps2
    mi, cj = np.nonzero(mask)
    gi = members[mi]
    gj = candidates[cj]
    if drop_self:
        keep = gi != gj
        gi, gj = gi[keep], gj[keep]
        dd = d2[mi, cj][keep].astype(np.float32) if store_distances else None
    else:
        dd = d2[mi, cj].astype(np.float32) if store_distances else None
    acc.append(gi, gj, dd)


def candidate_join(
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    dist_fn: GroupDistFn,
    eps2: float,
    *,
    store_distances: bool = True,
    candidate_chunk: int | None = None,
    on_group: Callable[[np.ndarray, np.ndarray], None] | None = None,
    acc: PairAccumulator | None = None,
) -> PairAccumulator:
    """Index-backed two-source join over ``(queries, candidates)`` groups.

    The A x B counterpart of :func:`candidate_self_join`: ``groups`` pairs
    query-point indices (into the left set) with candidate indices (into
    the right set), as produced by ``GridIndex.iter_join_groups`` /
    ``MultiSpaceTree.iter_join_groups``, and ``dist_fn(queries,
    candidates)`` returns the cross-set squared-distance block.  Identical
    filtering semantics except that no self pairs exist to drop -- equal
    indices address different points of the two sets.
    """
    if acc is None:
        acc = PairAccumulator(store_distances=store_distances)
    store_distances = acc.store_distances
    hooks = trace_mod.current_hooks()
    if hooks is not None:
        groups = _timed_groups(groups, hooks)
    for members, candidates in groups:
        if members.size == 0 or candidates.size == 0:
            continue
        if on_group is not None:
            on_group(members, candidates)
        chunk = candidate_chunk or candidates.size
        for c0 in range(0, candidates.size, chunk):
            cand = candidates[c0 : c0 + chunk]
            d2 = dist_fn(members, cand)
            t0 = time.perf_counter() if hooks is not None else 0.0
            _emit_group_pairs(
                acc, d2, members, cand, eps2,
                store_distances, drop_self=False,
            )
            if hooks is not None:
                hooks.record("commit", time.perf_counter() - t0)
    return acc


class _GatherView:
    """Array-shaped facade over a gather callback.

    Exposes exactly the surface the batched candidate executor touches on
    its ``work`` / ``sq_norms`` operands -- ``shape``, ``dtype`` and
    integer-array ``__getitem__`` -- so an on-demand row gather (e.g. a
    :class:`SourceWorkView` over a ``DatasetSource``) can stand in for a
    resident ndarray.
    """

    __slots__ = ("_fn", "shape", "dtype")

    def __init__(self, fn, shape: tuple, dtype: np.dtype) -> None:
        self._fn = fn
        self.shape = shape
        self.dtype = dtype

    def __getitem__(self, idx: np.ndarray) -> np.ndarray:
        return self._fn(idx)


class SourceWorkView:
    """Present a ``DatasetSource`` as the ``(work, sq_norms)`` pair the
    candidate executors index.

    Rows are gathered on demand with ``source.take`` and converted to the
    kernel's working precision per gather -- row-local operations, so the
    values are bit-exactly what slicing a whole-dataset precompute would
    yield (the same lever that makes ``self_join_source`` bit-identical to
    the in-memory joins).  A two-deep identity-keyed memo lets the norms
    view reuse the rows the executor just gathered (the executors always
    access ``work[idx]`` immediately before ``sq_norms[idx]``), so each
    index array costs one ``take`` even though two views consume it; two
    entries because a batched flush holds its member-side and
    candidate-side gathers *simultaneously* -- which is also why both
    stay charged to ``stats`` until evicted, keeping the residency
    high-water mark honest about the flush's real footprint.

    Parameters
    ----------
    source:
        ``DatasetSource`` (or anything with ``n``/``dim``/``take``).
    dtype:
        Working precision rows are converted to.
    norm:
        ``"rowsum"`` (``(w * w).sum(axis=1)``, the GDS/TED convention) or
        ``"einsum"`` (``np.einsum("nd,nd->n", w, w)``, MiSTIC's) --
        mirrors each kernel's precompute reduction so gathered norms match
        the in-memory ones bit for bit.
    stats:
        Optional :class:`StreamStats`; the memoized gather's bytes are
        accounted as resident until replaced or :meth:`close`\\ d.
    """

    def __init__(self, source, dtype, *, norm: str = "rowsum", stats=None) -> None:
        if norm not in ("rowsum", "einsum"):
            raise ValueError("norm must be 'rowsum' or 'einsum'")
        self._source = source
        self._dtype = np.dtype(dtype)
        self._norm = norm
        self._stats = stats
        #: (idx, rows) pairs, newest last; both batched-flush sides live.
        self._memo: deque = deque(maxlen=2)
        n, dim = int(source.n), int(source.dim)
        self.work = _GatherView(self._rows, (n, dim), self._dtype)
        self.sq_norms = _GatherView(self._norms, (n,), self._dtype)

    def _rows(self, idx: np.ndarray) -> np.ndarray:
        for held_idx, held_rows in self._memo:
            if held_idx is idx:
                return held_rows
        rows = self._source.take(idx)
        if rows.dtype != self._dtype:
            rows = rows.astype(self._dtype)
        if self._stats is not None:
            self._stats._acquire(rows.nbytes)
            if len(self._memo) == self._memo.maxlen:
                self._stats._release(self._memo[0][1].nbytes)
        self._memo.append((idx, rows))
        return rows

    def _norms(self, idx: np.ndarray) -> np.ndarray:
        w = self._rows(idx)
        if self._norm == "einsum":
            return np.einsum("nd,nd->n", w, w)
        return (w * w).sum(axis=1)

    def close(self) -> None:
        """Drop the memoized gathers (and release their residency charge)."""
        if self._stats is not None:
            for _idx, rows in self._memo:
                self._stats._release(rows.nbytes)
        self._memo.clear()


def batch_params_from_stats(
    stats,
    *,
    batch_elems: int | None = None,
    max_batch_groups: int | None = None,
    single_elems: int | None = None,
    min_fill: float | None = None,
) -> dict:
    """Derive batched-executor knobs from measured index moments.

    ``stats`` is a ``repro.index.grid.GridStats`` (duck-typed: the mean /
    standard deviation of per-cell member counts and candidate-set sizes).
    Any knob passed explicitly is taken verbatim -- the override escape
    hatch; the rest follow the group-shape distribution:

    * ``single_elems`` -- the bypass threshold scales with the typical
      group block (``8 x mean_members x mean_group_candidates``): a group
      several times the norm amortizes its own BLAS call, while on a
      fine-shattered grid the static default would bypass groups that are
      still call-overhead-bound.
    * ``batch_elems`` -- sized to hold ~64 groups padded one standard
      deviation above the mean, clamped to ``[2^16, 2^22]`` so a flush
      block neither degenerates to a handful of groups nor outgrows cache.
    * ``min_fill`` -- from the expected fill when padding to
      ``mean + std`` per axis: homogeneous group shapes (small std) raise
      the guard toward 0.5 (padding is cheap, demand it be tight), widely
      dispersed shapes lower it toward 0.15 (constant flushing would cost
      more than the padding it avoids).
    """
    mean_m = max(float(getattr(stats, "mean_members", 0.0)), 1.0)
    mean_c = max(float(getattr(stats, "mean_group_candidates", 0.0)), 1.0)
    std_m = float(getattr(stats, "std_members", 0.0))
    std_c = float(getattr(stats, "std_group_candidates", 0.0))
    pad_m = mean_m + std_m
    pad_c = mean_c + std_c
    if single_elems is None:
        single_elems = int(min(max(1 << 12, 8.0 * mean_m * mean_c), GROUP_CHUNK_ELEMS))
    if batch_elems is None:
        batch_elems = int(min(max(1 << 16, 64.0 * pad_m * pad_c), 1 << 22))
    if min_fill is None:
        fill_est = (mean_m / pad_m) * (mean_c / pad_c)
        min_fill = float(min(0.5, max(0.15, 0.6 * fill_est)))
    if max_batch_groups is None:
        max_batch_groups = 512
    return {
        "batch_elems": int(batch_elems),
        "max_batch_groups": int(max_batch_groups),
        "single_elems": int(single_elems),
        "min_fill": float(min_fill),
    }


#: Mean group block (members x candidates) above which per-group BLAS
#: calls amortize their own overhead and padding stops paying; below it
#: the padded-batch executor wins (the regime the committed
#: ``candidate_batched`` bench entry measures).
AUTO_BATCH_ELEMS = 1 << 14

#: Minimum nonempty-group count for batching: with fewer groups the
#: flush blocks never fill and batch assembly is pure overhead.
AUTO_BATCH_MIN_GROUPS = 32


def auto_batched_from_stats(stats) -> bool:
    """Should this index's group shapes ride the batched executor?

    The decision rule behind the kernels' ``batched=None`` default: an
    index whose *typical* group block (``mean_members x
    mean_group_candidates``) is small is call-overhead-bound -- exactly
    where padded batch GEMMs win -- provided there are enough nonempty
    groups (:data:`AUTO_BATCH_MIN_GROUPS`) to fill the flush blocks.
    Large typical blocks already amortize their own BLAS calls, and
    padding them would only burn bandwidth.  Explicit ``batched=True`` /
    ``False`` on a kernel bypasses this heuristic entirely.
    """
    mean_m = float(getattr(stats, "mean_members", 0.0))
    mean_c = float(getattr(stats, "mean_group_candidates", 0.0))
    n_groups = int(getattr(stats, "n_nonempty_cells", 0))
    typical = mean_m * mean_c
    return n_groups >= AUTO_BATCH_MIN_GROUPS and 0.0 < typical <= AUTO_BATCH_ELEMS


def _batched_candidate_executor(
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    work_m,
    sq_m,
    work_c,
    sq_c,
    eps2: float,
    *,
    drop_self: bool,
    store_distances: bool = True,
    batch_elems: int = 1 << 20,
    max_batch_groups: int = 512,
    single_elems: int = 1 << 12,
    min_fill: float = 0.35,
    on_group: Callable[[np.ndarray, np.ndarray], None] | None = None,
    acc: PairAccumulator | None = None,
) -> PairAccumulator:
    """Shared padded-batch-GEMM core of the batched candidate executors.

    ``work_m``/``sq_m`` back the member (query) side and ``work_c``/
    ``sq_c`` the candidate side -- the same arrays for a self-join,
    different sets for a two-source join.  Either side may be a resident
    ndarray or a :class:`SourceWorkView` gather facade: the executor
    touches only ``shape``/``dtype``/integer indexing, and all of a
    flush's member (resp. candidate) rows are gathered through **one**
    concatenated index per side, so a source-backed run issues one
    ``take`` per side per flush instead of one per group.
    """
    if acc is None:
        acc = PairAccumulator(store_distances=store_distances)
    store_distances = acc.store_distances
    hooks = trace_mod.current_hooks()
    d = work_m.shape[1]
    work_dtype = work_m.dtype
    norm_dtype = sq_m.dtype
    # Bypassed (large) groups chunk their candidate axis like the
    # per-group executor does, so a dense cell cannot blow up a single
    # (members x candidates) temporary.
    single_chunk = max(1, GROUP_CHUNK_ELEMS // max(d, 1))

    def run_single(members: np.ndarray, candidates: np.ndarray) -> None:
        t0 = time.perf_counter() if hooks is not None else 0.0
        wm = work_m[members]
        sm = sq_m[members]
        if hooks is not None:
            hooks.record("gather", time.perf_counter() - t0)
        for c0 in range(0, candidates.size, single_chunk):
            cand = candidates[c0 : c0 + single_chunk]
            if hooks is None:
                wc = work_c[cand]
                sc = sq_c[cand]
                d2 = norm_expansion_sq_dists(sm, sc, wm @ wc.T)
                _emit_group_pairs(
                    acc, d2, members, cand, eps2, store_distances,
                    drop_self=drop_self,
                )
                continue
            # Timed flavor: identical operations, split only at the
            # expression boundaries NumPy already evaluates in order.
            t0 = time.perf_counter()
            wc = work_c[cand]
            sc = sq_c[cand]
            t1 = time.perf_counter()
            gram = wm @ wc.T
            t2 = time.perf_counter()
            d2 = norm_expansion_sq_dists(sm, sc, gram)
            t3 = time.perf_counter()
            _emit_group_pairs(
                acc, d2, members, cand, eps2, store_distances,
                drop_self=drop_self,
            )
            t4 = time.perf_counter()
            hooks.record("gather", t1 - t0)
            hooks.record("gemm", t2 - t1)
            hooks.record("rz", t3 - t2)
            hooks.record("commit", t4 - t3)

    batch: list[tuple[np.ndarray, np.ndarray]] = []
    batch_m = batch_c = batch_fill = 0

    def flush() -> None:
        nonlocal batch, batch_m, batch_c, batch_fill
        if not batch:
            return
        if len(batch) == 1:
            run_single(*batch[0])
            batch, batch_m, batch_c, batch_fill = [], 0, 0, 0
            return
        g = len(batch)
        t0 = time.perf_counter() if hooks is not None else 0.0
        # One concatenated gather per side: identical row values to the
        # former per-group gathers (row gathers are row-local), but a
        # source-backed view pays one take() per side per flush.
        mem_cat = np.concatenate([m for m, _ in batch])
        cand_cat = np.concatenate([c for _, c in batch])
        wm_all = work_m[mem_cat]
        sm_all = sq_m[mem_cat]
        wc_all = work_c[cand_cat]
        sc_all = sq_c[cand_cat]
        p = np.zeros((g, batch_m, d), dtype=work_dtype)
        q = np.zeros((g, batch_c, d), dtype=work_dtype)
        sm = np.full((g, batch_m), np.inf, dtype=norm_dtype)
        sc = np.full((g, batch_c), np.inf, dtype=norm_dtype)
        mi_idx = np.zeros((g, batch_m), dtype=np.int64)
        cj_idx = np.zeros((g, batch_c), dtype=np.int64)
        mo = co = 0
        for k, (members, candidates) in enumerate(batch):
            m, c = members.size, candidates.size
            p[k, :m] = wm_all[mo : mo + m]
            sm[k, :m] = sm_all[mo : mo + m]
            mi_idx[k, :m] = members
            q[k, :c] = wc_all[co : co + c]
            sc[k, :c] = sc_all[co : co + c]
            cj_idx[k, :c] = candidates
            mo += m
            co += c
        if hooks is not None:
            t1 = time.perf_counter()
            hooks.record("gather", t1 - t0)
        gram = np.matmul(p, q.transpose(0, 2, 1))
        if hooks is not None:
            t2 = time.perf_counter()
            hooks.record("gemm", t2 - t1)
        # Same elementwise order as norm_expansion_sq_dists, batched.
        t = sm[:, :, None] + sc[:, None, :]
        np.multiply(gram, 2.0, out=gram)
        np.subtract(t, gram, out=gram)
        np.maximum(gram, 0.0, out=gram)
        if hooks is not None:
            t3 = time.perf_counter()
            hooks.record("rz", t3 - t2)
        # Padded rows/cols have inf norms -> inf distance -> filtered here.
        mask = gram <= eps2
        gk, mi, cj = np.nonzero(mask)
        gi = mi_idx[gk, mi]
        gj = cj_idx[gk, cj]
        if drop_self:
            keep = gi != gj
            gi, gj = gi[keep], gj[keep]
            dd = (
                gram[gk, mi, cj][keep].astype(np.float32)
                if store_distances
                else None
            )
        else:
            dd = gram[gk, mi, cj].astype(np.float32) if store_distances else None
        acc.append(gi, gj, dd)
        if hooks is not None:
            hooks.record("commit", time.perf_counter() - t3)
        batch, batch_m, batch_c, batch_fill = [], 0, 0, 0

    if hooks is not None:
        groups = _timed_groups(groups, hooks)
    for members, candidates in groups:
        if members.size == 0 or candidates.size == 0:
            continue
        if on_group is not None:
            on_group(members, candidates)
        mc = members.size * candidates.size
        if mc > single_elems:
            flush()  # preserve group order across the two paths
            run_single(members, candidates)
            continue
        new_m = max(batch_m, members.size)
        new_c = max(batch_c, candidates.size)
        padded = (len(batch) + 1) * new_m * new_c
        if batch and (
            padded > batch_elems
            or len(batch) >= max_batch_groups
            or (batch_fill + mc) < min_fill * padded
        ):
            flush()
            new_m, new_c = members.size, candidates.size
        batch.append((members, candidates))
        batch_m, batch_c, batch_fill = new_m, new_c, batch_fill + mc
    flush()
    return acc


def batched_candidate_self_join(
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    work: np.ndarray,
    sq_norms: np.ndarray,
    eps2: float,
    *,
    store_distances: bool = True,
    batch_elems: int = 1 << 20,
    max_batch_groups: int = 512,
    single_elems: int = 1 << 12,
    min_fill: float = 0.35,
    on_group: Callable[[np.ndarray, np.ndarray], None] | None = None,
    acc: PairAccumulator | None = None,
) -> PairAccumulator:
    """Index-backed self-join with small groups fused into padded batch GEMMs.

    :func:`candidate_self_join` issues one GEMM per ``(members,
    candidates)`` group; at small eps the grid degenerates into thousands
    of tiny groups and the join becomes Python-call overhead, not BLAS.
    This executor buffers consecutive small groups and evaluates each
    buffer as **one padded batch GEMM** -- groups are zero-padded to the
    buffer's max member/candidate counts and multiplied as a stacked
    ``(g, M, d) @ (g, d, C)`` ``np.matmul``, the host analogue of the GPU
    kernels dispatching fixed 8x8 tiles.  Padded rows carry ``+inf`` norms
    so they can never pass the ``eps^2`` filter; real entries go through
    the exact same norm-expansion recombination as the per-group path.

    The pair *set* matches :func:`candidate_self_join` on the same groups
    (tests/test_streaming.py pins this); individual low-order distance
    bits may differ in FP32 because BLAS may reassociate differently for
    the padded shapes, which is the same caveat as ``row_block`` changes
    on the symmetric executor.

    Parameters
    ----------
    groups:
        Iterable of ``(members, candidates)`` global-index arrays.  Feeding
        size-sorted groups (``GridIndex.iter_cells(order="size")``) keeps
        padding waste low.
    work:
        ``(n, d)`` dataset in the kernel's working precision -- a resident
        ndarray or a :class:`SourceWorkView` ``.work`` facade for
        source-backed (out-of-core) joins.
    sq_norms:
        ``(n,)`` squared norms of ``work`` rows, in the same precision and
        reduction order the kernel's per-group path uses (or the matching
        ``SourceWorkView.sq_norms`` facade).
    eps2:
        Squared radius in the kernel's working precision.
    store_distances:
        Track per-pair squared distances.
    batch_elems:
        Flush a buffer before its padded ``g * M * C`` distance block would
        exceed this many elements.
    max_batch_groups:
        Hard cap on groups per flush (bounds the Python-side gather loop).
    single_elems:
        Groups whose own ``members * candidates`` exceeds this bypass
        batching and run as one plain GEMM -- a group that large amortizes
        its own BLAS call, and padding it would waste more than the call
        overhead it saves.
    min_fill:
        Flush before the buffer's fill ratio (real ``sum(m*c)`` over
        padded ``g * M * C``) would drop below this -- the guard that
        keeps heterogeneous group shapes from turning padding into more
        work than batching saves.
    on_group:
        Statistics hook, called once per nonempty group in input order.
    acc:
        Emit into this accumulator instead of a fresh one
        (``store_distances`` is ignored when given).

    The knobs default to the static values above; kernels with a grid
    index derive them from the measured group-size distribution instead
    (:func:`batch_params_from_stats` over ``GridIndex.stats()``).
    """
    return _batched_candidate_executor(
        groups, work, sq_norms, work, sq_norms, eps2,
        drop_self=True,
        store_distances=store_distances,
        batch_elems=batch_elems,
        max_batch_groups=max_batch_groups,
        single_elems=single_elems,
        min_fill=min_fill,
        on_group=on_group,
        acc=acc,
    )


def batched_candidate_join(
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    work_a,
    sq_a,
    work_b,
    sq_b,
    eps2: float,
    *,
    store_distances: bool = True,
    batch_elems: int = 1 << 20,
    max_batch_groups: int = 512,
    single_elems: int = 1 << 12,
    min_fill: float = 0.35,
    on_group: Callable[[np.ndarray, np.ndarray], None] | None = None,
    acc: PairAccumulator | None = None,
) -> PairAccumulator:
    """Two-source batched candidate executor: external queries, padded GEMMs.

    The A x B counterpart of :func:`batched_candidate_self_join` and the
    batched sibling of :func:`candidate_join`: ``groups`` pairs query
    indices (into the left set, backed by ``work_a``/``sq_a``) with
    candidate indices (into the right set, ``work_b``/``sq_b``), small
    groups are fused into padded batch GEMMs, and -- the two-source
    convention -- no self pairs are dropped, because equal indices address
    different points.  This is the executor the query-serving layer
    (``repro.service``) routes coalesced external range queries through;
    either side accepts a :class:`SourceWorkView` for out-of-core data.
    Same pair-set contract as the self-join form.
    """
    return _batched_candidate_executor(
        groups, work_a, sq_a, work_b, sq_b, eps2,
        drop_self=False,
        store_distances=store_distances,
        batch_elems=batch_elems,
        max_batch_groups=max_batch_groups,
        single_elems=single_elems,
        min_fill=min_fill,
        on_group=on_group,
        acc=acc,
    )


# ----------------------------------------------------------------------
# Process-pool candidate execution
# ----------------------------------------------------------------------
#
# The candidate executors' per-group work (tiny gathers + a microscopic
# GEMM + mask extraction) is dominated by GIL-held Python/NumPy header
# time, so a *thread* pool cannot speed it up.  A *process* pool can, in
# two flavors sharing one numeric core and one submit/commit loop:
#
# * **fork** -- the dataset arrays are inherited copy-on-write through
#   the module-global fork state below;
# * **spawn** -- the dataset rows + norms are written once into named
#   ``multiprocessing.shared_memory`` segments, each worker attaches
#   read-only views in its initializer, and the parent unlinks the
#   segments when the pool closes (spawn-only platforms -- macOS
#   default, Windows -- get pool execution instead of the old inline
#   fallback).
#
# Either way tasks carry only batches of group index arrays and results
# carry only the extracted pairs.  Batches are committed in submission
# order, so output is bit-identical to the serial per-group executor
# (the batched mode shares the batched executor's pair-set-equality
# contract instead, because batch boundaries move with the
# partitioning).  :func:`resolve_start_method` picks the flavor:
# ``REPRO_START_METHOD`` env override, else fork where available.

#: Dataset state inherited by forked candidate workers.  Set immediately
#: before the pool forks and cleared afterwards, under ``_FORK_LOCK``.
_FORK_STATE: dict[str, Any] | None = None

#: Serializes process-pool candidate joins within one parent process:
#: ``ProcessPoolExecutor`` forks lazily at first submit, so without the
#: lock a concurrent join could overwrite ``_FORK_STATE`` before this
#: join's children fork and they would inherit the wrong dataset.
_FORK_LOCK = threading.Lock()


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_start_method(preference: str | None = None) -> str:
    """Resolve a pool start-method preference to ``"fork"`` or ``"spawn"``.

    The ``REPRO_START_METHOD`` environment variable overrides
    ``preference`` when set; ``"auto"`` (the default) picks fork where
    the platform offers it and spawn otherwise.  Requesting fork on a
    platform without it is an error -- silently substituting spawn would
    hide a large per-child start-up cost behind an identical-looking
    run.
    """
    env = os.environ.get("REPRO_START_METHOD", "").strip().lower()
    raw = env or (preference or "auto").strip().lower()
    if raw not in ("auto", "fork", "spawn"):
        raise ValueError(
            f"start method must be 'auto', 'fork', or 'spawn'; got {raw!r}"
        )
    if raw == "auto":
        return "fork" if _fork_available() else "spawn"
    if raw == "fork" and not _fork_available():
        raise ValueError(
            "the 'fork' start method is unavailable on this platform"
        )
    return raw


#: Count of group batches recovered inline after pool child death
#: (observability hook; tests assert recovery actually engaged).  Shared
#: by the fork and spawn flavors -- what it counts is the recovery, not
#: the start method.
FORK_RECOVERIES = 0

#: Cumulative spawn-pool shared-memory traffic: segments created by
#: :func:`_share_array` and the bytes they held.  Like
#: :data:`FORK_RECOVERIES` these are plain module counters the serving
#: layer surfaces as registry gauges (``repro_spawn_shm_segments`` /
#: ``repro_spawn_shm_bytes``) so ``/metrics`` covers worker-pool health.
SPAWN_SHM_SEGMENTS = 0
SPAWN_SHM_BYTES = 0


def _eval_candidate_batch(st: dict, batch: list) -> tuple:
    """Evaluate one batch of ``(members, candidates)`` against ``st``.

    The single numeric core behind both pool flavors *and* the parent's
    inline recovery path: numerics and chunking mirror
    :func:`candidate_self_join` / :func:`candidate_join` exactly (same
    gathers, same GEMM shapes, same extraction), which is why pooled
    results are bit-identical to serial.
    """
    acc = PairAccumulator(store_distances=st["store_distances"])
    work_m, sq_m = st["work_m"], st["sq_m"]
    work_c, sq_c = st["work_c"], st["sq_c"]
    eps2 = st["eps2"]
    drop_self = st["drop_self"]
    store_distances = st["store_distances"]
    if st["batched"]:
        inner = batched_candidate_self_join(
            batch, work_m, sq_m, eps2, store_distances=store_distances,
            **(st["batch_params"] or {}),
        )
        return inner.arrays()
    chunk0 = st["candidate_chunk"]
    for members, candidates in batch:
        wm = work_m[members]
        sm = sq_m[members]
        chunk = chunk0 or candidates.size
        for c0 in range(0, candidates.size, chunk):
            cand = candidates[c0 : c0 + chunk]
            d2 = norm_expansion_sq_dists(sm, sq_c[cand], wm @ work_c[cand].T)
            _emit_group_pairs(
                acc, d2, members, cand, eps2, store_distances, drop_self=drop_self
            )
    return acc.arrays()


def _candidate_fork_worker(batch: list, _in_child: bool = True) -> tuple:
    """Fork-pool worker entry: evaluate one batch in a forked child.

    The dataset state arrives copy-on-write through ``_FORK_STATE``.
    The ``worker.exec`` fault point only fires on the child path; the
    parent's recovery re-evaluation must not re-trip the fault that
    killed the child.
    """
    if _in_child and faults.ARMED:
        faults.check("worker.exec")
    return _eval_candidate_batch(_FORK_STATE, batch)


# ----------------------------------------------------------------------
# Spawn flavor: shared-memory dataset segments
# ----------------------------------------------------------------------

#: Dataset state attached by spawned candidate workers: task-meta
#: scalars plus read-only views over the parent's shared-memory
#: segments.  Set once per worker by :func:`_spawn_initializer`.
_SPAWN_STATE: dict[str, Any] | None = None


def _attach_shared(name: str) -> shared_memory.SharedMemory:
    """Attach to a named segment without resource-tracker ownership.

    Attaching would register the segment with the resource tracker the
    pool workers share with the parent; since the tracker's cache is a
    plain per-name set, the worker's registration would collide with the
    parent's and the segment could be unlinked out from under its
    siblings.  The parent owns each segment and unlinks it exactly once
    when the pool closes, so worker-side registration is suppressed for
    the duration of the attach (3.13's ``track=False`` argument, done by
    hand for 3.11/3.12).
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *a, **k: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _share_array(arr: np.ndarray) -> tuple[shared_memory.SharedMemory, tuple]:
    """Copy ``arr`` into a fresh named segment; returns (segment, meta).

    The meta triple ``(name, shape, dtype_str)`` is what the task
    protocol ships to workers -- never the array itself.
    """
    global SPAWN_SHM_SEGMENTS, SPAWN_SHM_BYTES
    arr = np.ascontiguousarray(arr)
    seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
    view[...] = arr
    SPAWN_SHM_SEGMENTS += 1
    SPAWN_SHM_BYTES += seg.size
    return seg, (seg.name, arr.shape, arr.dtype.str)


def _spawn_initializer(meta: dict) -> None:
    """Spawn-pool worker initializer: map the shared segments once.

    Runs once per worker; every task afterwards ships only group index
    arrays.  Views are marked read-only so a kernel bug cannot scribble
    on the dataset every sibling worker is reading.  Segment handles are
    kept on the state dict so the mappings outlive this call.
    """
    global _SPAWN_STATE
    st = dict(meta["scalars"])
    segments = []
    for key, (seg_name, shape, dtype) in meta["arrays"].items():
        seg = _attach_shared(seg_name)
        segments.append(seg)
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)
        view.flags.writeable = False
        st[key] = view
    for key, other in meta["aliases"].items():
        st[key] = st[other]
    st["_segments"] = segments
    _SPAWN_STATE = st


def _candidate_spawn_worker(batch: list) -> tuple:
    """Spawn-pool worker entry: evaluate one batch against the mapped
    shared-memory views.  Faults arm from ``REPRO_FAULTS`` at import, so
    the ``worker.exec`` point fires in spawned children exactly as it
    does in forked ones."""
    if faults.ARMED:
        faults.check("worker.exec")
    return _eval_candidate_batch(_SPAWN_STATE, batch)


def _drive_pool(
    pool: ProcessPoolExecutor,
    worker_fn: Callable[[list], tuple],
    state: dict,
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    on_group: Callable[[np.ndarray, np.ndarray], None] | None,
    group_batch: int,
    n_workers: int,
    acc: PairAccumulator,
) -> None:
    """Submit group batches to ``pool`` and commit results in order.

    Each pending entry keeps its batch next to its future: if a child
    dies (SIGKILL, OOM-kill), the pool breaks and every in-flight future
    raises BrokenProcessPool -- the batch is then re-evaluated *inline*
    on the parent via :func:`_eval_candidate_batch` over ``state`` (the
    parent's own arrays, for either flavor), and commits stay in
    submission order, so the recovered result is bit-identical to the
    no-failure run (and to serial).
    """
    store_distances = acc.store_distances
    hooks = trace_mod.current_hooks()
    pending: deque = deque()
    batch: list[tuple[np.ndarray, np.ndarray]] = []

    def retry_inline(items: list) -> tuple:
        global FORK_RECOVERIES
        FORK_RECOVERIES += 1
        return _eval_candidate_batch(state, items)

    def commit_head() -> None:
        fut, items = pending.popleft()
        t0 = time.perf_counter() if hooks is not None else 0.0
        if fut is None:
            i, j, d = retry_inline(items)
        else:
            try:
                i, j, d = fut.result()
            except BrokenProcessPool:
                i, j, d = retry_inline(items)
        if hooks is not None:
            # Wall time blocked on (or recovering) the worker batch --
            # the parent-side view of pool execution for this request.
            t1 = time.perf_counter()
            hooks.record("worker", t1 - t0)
        acc.append(i, j, d if store_distances else None)
        if hooks is not None:
            hooks.record("commit", time.perf_counter() - t1)

    def flush() -> None:
        if batch:
            items = list(batch)
            try:
                fut = pool.submit(worker_fn, items)
            except (BrokenProcessPool, RuntimeError):
                # Pool already broken/shut: queue the batch for lazy
                # inline evaluation at commit time (keeps commit order
                # and memory bounded).
                fut = None
            pending.append((fut, items))
            batch.clear()

    for members, candidates in groups:
        if members.size == 0 or candidates.size == 0:
            continue
        if on_group is not None:
            on_group(members, candidates)
        batch.append((members, candidates))
        if len(batch) >= group_batch:
            flush()
            while len(pending) > 2 * n_workers:
                commit_head()
    flush()
    while pending:
        commit_head()


def process_candidate_self_join(
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    work: np.ndarray,
    sq_norms: np.ndarray,
    eps2: float,
    *,
    store_distances: bool = True,
    candidate_chunk: int | None = None,
    on_group: Callable[[np.ndarray, np.ndarray], None] | None = None,
    workers: "int | str | WorkerPlan | None" = 0,
    group_batch: int = 64,
    batched: bool = False,
    batch_params: dict | None = None,
    drop_self: bool = True,
    work_right: np.ndarray | None = None,
    sq_norms_right: np.ndarray | None = None,
    acc: PairAccumulator | None = None,
) -> PairAccumulator:
    """Candidate-group join fanned out to a process pool.

    The process-pool sibling of :func:`candidate_self_join` (and, with
    ``batched=True``, of :func:`batched_candidate_self_join`) for the
    norm-expansion kernels: groups are buffered into batches of
    ``group_batch``, each batch is evaluated in a pool worker against
    the ``work`` / ``sq_norms`` arrays -- inherited copy-on-write under
    the fork start method, mapped read-only from named shared-memory
    segments under spawn (see :func:`resolve_start_method` /
    ``REPRO_START_METHOD``) -- and results are committed in submission
    order, bit-identical to the serial per-group executor (the batched
    mode carries the batched executor's pair-*set* contract instead).
    ``on_group`` fires in the parent, in group order, exactly as the
    serial executors fire it.

    Two-source joins pass the right set via ``work_right`` /
    ``sq_norms_right`` and ``drop_self=False`` (the
    :func:`candidate_join` convention).  When the resolved plan is
    serial, the evaluation runs inline with identical numerics -- the
    function is always safe to call.
    """
    wp = WorkerPlan.resolve(workers)
    if acc is None:
        acc = PairAccumulator(store_distances=store_distances)
    store_distances = acc.store_distances
    work_c = work if work_right is None else work_right
    sq_c = sq_norms if sq_norms_right is None else sq_norms_right

    if not wp.parallel:
        # Inline fallback with the exact worker numerics, emitting
        # straight into the caller's accumulator.
        if batched:
            if work_right is not None:
                raise ValueError("batched process execution is self-join only")
            return batched_candidate_self_join(
                _observed_groups(groups, on_group), work, sq_norms, eps2,
                store_distances=store_distances, acc=acc,
                **(batch_params or {}),
            )

        def dist(members: np.ndarray, cand: np.ndarray) -> np.ndarray:
            return norm_expansion_sq_dists(
                sq_norms[members], sq_c[cand], work[members] @ work_c[cand].T
            )

        runner = candidate_self_join if drop_self else candidate_join
        return runner(
            groups, dist, eps2,
            store_distances=store_distances,
            candidate_chunk=candidate_chunk,
            on_group=on_group,
            acc=acc,
        )

    if batched and work_right is not None:
        raise ValueError("batched process execution is self-join only")

    hooks = trace_mod.current_hooks()
    state = {
        "work_m": work,
        "sq_m": sq_norms,
        "work_c": work_c,
        "sq_c": sq_c,
        "eps2": eps2,
        "store_distances": store_distances,
        "candidate_chunk": candidate_chunk,
        "drop_self": drop_self,
        "batched": batched,
        "batch_params": batch_params,
        # Task metadata, not numerics: workers inherit the originating
        # request's trace id (fork: via _FORK_STATE, spawn: via the
        # initializer scalars) so a pool batch is attributable to the
        # request that spawned it.
        "trace_id": hooks.trace_id if hooks is not None else None,
    }
    method = wp.resolved_start_method()
    if method == "fork":
        global _FORK_STATE
        ctx = multiprocessing.get_context("fork")
        with _FORK_LOCK:
            _FORK_STATE = state
            try:
                with ProcessPoolExecutor(
                    max_workers=wp.n_workers, mp_context=ctx
                ) as pool:
                    _drive_pool(
                        pool, _candidate_fork_worker, state, groups,
                        on_group, group_batch, wp.n_workers, acc,
                    )
            finally:
                _FORK_STATE = None
        return acc

    # Spawn flavor: write each distinct operand array into a named
    # shared-memory segment exactly once (a self-join's candidate side
    # aliases its member side rather than being copied again), ship only
    # the segment names + scalars to the pool initializer, and unlink
    # the segments when the pool is done.  No module-global handoff, so
    # no _FORK_LOCK: concurrent spawn joins each own their segments.
    array_meta: dict[str, tuple] = {}
    aliases: dict[str, str] = {}
    segments: list[shared_memory.SharedMemory] = []
    mapped: dict[int, str] = {}
    try:
        for key in ("work_m", "sq_m", "work_c", "sq_c"):
            arr = state[key]
            prior = mapped.get(id(arr))
            if prior is not None:
                aliases[key] = prior
                continue
            seg, meta = _share_array(arr)
            segments.append(seg)
            array_meta[key] = meta
            mapped[id(arr)] = key
        meta = {
            "scalars": {
                k: state[k]
                for k in (
                    "eps2", "store_distances", "candidate_chunk",
                    "drop_self", "batched", "batch_params", "trace_id",
                )
            },
            "arrays": array_meta,
            "aliases": aliases,
        }
        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=wp.n_workers, mp_context=ctx,
            initializer=_spawn_initializer, initargs=(meta,),
        ) as pool:
            _drive_pool(
                pool, _candidate_spawn_worker, state, groups,
                on_group, group_batch, wp.n_workers, acc,
            )
    finally:
        for seg in segments:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover -- already gone
                pass
    return acc


def _observed_groups(
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    on_group: Callable[[np.ndarray, np.ndarray], None] | None,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Pass groups through, firing ``on_group`` on the nonempty ones."""
    for members, candidates in groups:
        if members.size and candidates.size and on_group is not None:
            on_group(members, candidates)
        yield members, candidates
