"""Shared vectorized join-engine: the functional hot path of every kernel.

Architecture
------------
All four simulated kernels (FaSTED, TED-Join, GDS-Join, MiSTIC) compute the
same thing functionally -- "which candidate pairs are within ``eps``" -- and
before this module existed each re-implemented its own tile loop, its own
Python-list pair accumulation, and its own diagonal/mirror bookkeeping.  The
engine factors that shell out so a kernel only supplies the *numerics*: a
callback producing the squared-distance block for a tile or candidate group,
in whatever precision that kernel models (FP16-32, FP32, FP64).

Two execution shapes cover every kernel:

* :func:`symmetric_self_join` -- dense/brute kernels.  The point set is cut
  into ``row_block`` tiles and only the upper triangle of the tile grid
  (``c0 >= r0``) is computed; off-diagonal tiles are mirrored into both
  pair directions, halving the GEMM work.  ``dist(i, j) == dist(j, i)``
  holds bitwise for every precision here because float addition is
  commutative and BLAS dot products do not depend on the operand block's
  position, so mirroring is *bit-identical* to computing the full matrix
  (tests/test_engine.py pins this against re-implementations of the seed
  kernels).  Tiles can optionally be dispatched to a thread pool
  (``workers``); NumPy/BLAS release the GIL for the heavy ops, results are
  committed in deterministic tile order either way.

* :func:`candidate_self_join` -- index-backed kernels.  Iterates
  ``(members, candidates)`` groups from a grid/tree index, evaluates the
  kernel's distance block per group (optionally chunking very wide
  candidate lists to bound temporaries), filters by ``eps^2``, drops self
  pairs, and accumulates.  Its batched sibling
  :func:`batched_candidate_self_join` concatenates many *small* groups
  into one padded batch GEMM per flush -- the host analogue of how the
  paper's GPU kernels dispatch work in fixed 8x8 tiles -- which lifts the
  index-backed kernels at small eps, where per-group GEMMs degenerate to
  Python-call overhead.

A third shape extends the symmetric executor past resident memory:
:func:`streaming_self_join` drives the same tile geometry from a
:class:`repro.data.source.DatasetSource`, scheduling row-block loads with a
:class:`TilePlan`, prefetching the next block on a background thread while
the current GEMM runs, and holding at most a handful of blocks resident
(``O(row_block * d)``) -- bit-identical to the in-memory path (see
docs/ARCHITECTURE.md for the dataflow and the bit-identity argument).

The fourth shape generalizes all of this to **two-source joins** ``A x B``:
:func:`rect_join` is the in-memory rectangular executor (every tile of the
``A``-rows x ``B``-cols grid is evaluated -- no symmetry to exploit, no
diagonal to clear, pairs emitted in one direction only) and
:func:`streaming_join` is its out-of-core form, driven by a rectangular
:class:`RectTilePlan` with independent row/column block schedules and
prefetch across both sources.  :func:`candidate_join` is the two-source
candidate-group executor (grid/tree candidates from the right set per
query group of the left set; index equality does *not* mean identity, so
no self pairs are dropped).

All shapes emit into a :class:`repro.core.results.PairAccumulator` --
preallocated, geometrically grown arrays -- instead of per-tile Python
lists, and hand back the accumulator so the kernel can attach its own
metadata (padded candidate counts, short-circuit profiles) via the
``on_group`` hook without re-iterating the index.

The timing paths of the kernels still walk their own tile geometry;
ROADMAP lists "engine-backed timing-path reuse" as a follow-on.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.core.results import PairAccumulator

#: ``tile_fn(r0, r1, c0, c1)`` returns the squared-distance block for points
#: ``[r0:r1]`` x ``[c0:c1]`` in the kernel's working precision.
TileFn = Callable[[int, int, int, int], np.ndarray]

#: ``dist_fn(members, candidates)`` returns the squared-distance block for
#: two index arrays into the dataset.
GroupDistFn = Callable[[np.ndarray, np.ndarray], np.ndarray]

#: Default bound on the elements of one candidate-group distance block;
#: callers chunk the candidate axis so a temporary stays ~this many
#: elements regardless of cell density (shared by the per-group executor,
#: the batched executor's large-group bypass, and the kernels).
GROUP_CHUNK_ELEMS = 2_000_000

#: ``prepare(raw_block)`` turns a loaded float64 row block into the kernel's
#: per-block working state (e.g. quantized coordinates + precomputed norms).
BlockPrepareFn = Callable[[np.ndarray], Any]

#: ``block_sq_dists(row_state, col_state)`` returns the squared-distance
#: block between two prepared blocks in the kernel's working precision.
BlockDistFn = Callable[[Any, Any], np.ndarray]


def norm_expansion_sq_dists(
    s_row: np.ndarray, s_col: np.ndarray, gram: np.ndarray
) -> np.ndarray:
    """``max(0, (s_i + s_j) - 2*gram)`` computed in place on ``gram``.

    The shared Step-3 recombination of every kernel.  Elementwise order is
    exactly ``(s_row[:, None] + s_col[None, :]) - 2.0 * gram`` so results
    are bit-identical to the naive expression in any precision, but only
    one temporary (the broadcast norm sum) is allocated; the scale,
    subtract, and clamp reuse the gram buffer.
    """
    t = s_row[:, None] + s_col[None, :]
    np.multiply(gram, 2.0, out=gram)
    np.subtract(t, gram, out=gram)
    return np.maximum(gram, 0.0, out=gram)


def iter_symmetric_tiles(
    n: int, row_block: int
) -> Iterator[tuple[int, int, int, int]]:
    """Upper-triangle tile coordinates ``(r0, r1, c0, c1)`` with ``c0 >= r0``."""
    for r0 in range(0, n, row_block):
        r1 = min(r0 + row_block, n)
        for c0 in range(r0, n, row_block):
            yield r0, r1, c0, min(c0 + row_block, n)


def _extract_pairs(
    d2: np.ndarray,
    r0: int,
    c0: int,
    eps2: float,
    store_distances: bool,
    *,
    clear_diagonal: bool | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Extract the in-range pairs (global indices) of one evaluated tile.

    ``clear_diagonal`` defaults to the self-join convention (the diagonal
    of an ``r0 == c0`` tile holds self pairs); two-source executors pass
    ``False`` because a coincidental ``r0 == c0`` relates *different*
    points of the two sets.
    """
    mask = d2 <= eps2
    if clear_diagonal if clear_diagonal is not None else c0 == r0:
        np.fill_diagonal(mask, False)
    ii, jj = np.nonzero(mask)
    gi = ii.astype(np.int64)
    gi += r0
    gj = jj.astype(np.int64)
    gj += c0
    dd = d2[ii, jj].astype(np.float32) if store_distances else None
    return gi, gj, dd


def _extract_tile(
    tile_fn: TileFn,
    eps2: float,
    store_distances: bool,
    tile: tuple[int, int, int, int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Evaluate one tile and extract its in-range pairs (global indices)."""
    r0, r1, c0, c1 = tile
    return _extract_pairs(tile_fn(r0, r1, c0, c1), r0, c0, eps2, store_distances)


def symmetric_self_join(
    n: int,
    eps2: float,
    tile_fn: TileFn,
    *,
    row_block: int = 2048,
    store_distances: bool = True,
    workers: int = 0,
) -> PairAccumulator:
    """Tiled self-join over the upper triangle of the tile grid.

    Only tiles with ``c0 >= r0`` are evaluated; for off-diagonal tiles both
    pair directions are emitted from the one evaluation.  Diagonal tiles
    already contain both directions and get their self-pair diagonal
    cleared.

    Parameters
    ----------
    n:
        Number of points.
    eps2:
        Squared radius in the kernel's working precision (pairs with
        ``d2 <= eps2`` are kept, matching every kernel's seed semantics).
    tile_fn:
        Kernel numerics; see :data:`TileFn`.
    row_block:
        Tile edge (performance knob only -- results are identical for any
        value).
    store_distances:
        Track per-pair squared distances.
    workers:
        When > 1, evaluate tiles in a thread pool of this size (off by
        default).  BLAS/NumPy release the GIL for the heavy ops; pairs are
        committed in tile order, so results are deterministic and identical
        to the serial path.
    """
    acc = PairAccumulator(store_distances=store_distances)
    tiles = list(iter_symmetric_tiles(n, row_block))

    def commit(
        tile: tuple[int, int, int, int],
        extracted: tuple[np.ndarray, np.ndarray, np.ndarray | None],
    ) -> None:
        gi, gj, dd = extracted
        acc.append(gi, gj, dd)
        if tile[2] != tile[0]:  # mirrored direction of an off-diagonal tile
            acc.append(gj, gi, dd)

    if workers and workers > 1 and len(tiles) > 1:
        # Windowed submission: keep only ~2x workers tiles in flight so
        # finished-but-uncommitted results never pile up (commit order is
        # still strictly tile order -> deterministic output).
        window = 2 * int(workers)
        pending: deque = deque()
        with ThreadPoolExecutor(max_workers=int(workers)) as pool:
            for tile in tiles:
                pending.append(
                    (tile, pool.submit(_extract_tile, tile_fn, eps2, store_distances, tile))
                )
                if len(pending) >= window:
                    head, fut = pending.popleft()
                    commit(head, fut.result())
            while pending:
                head, fut = pending.popleft()
                commit(head, fut.result())
    else:
        for tile in tiles:
            commit(tile, _extract_tile(tile_fn, eps2, store_distances, tile))
    return acc


@dataclass(frozen=True)
class TilePlan:
    """Schedule of row-block loads for an out-of-core symmetric self-join.

    The plan owns the tile geometry of the streaming executor: the dataset
    is cut into ``ceil(n / row_block)`` row blocks, and the upper triangle
    of the block grid (``cj >= ri``) is evaluated exactly like
    :func:`iter_symmetric_tiles` does in memory -- the two paths share the
    same tile coordinates, which is half of the bit-identity argument
    (docs/ARCHITECTURE.md has the other half).

    A block is loaded once per *row stripe* it participates in: processing
    row block ``ri`` loads block ``ri`` (kept resident for the whole
    stripe) and then streams column blocks ``ri+1 .. nb-1`` through, each
    discarded after its tile.  Peak residency is therefore bounded by
    :data:`RESIDENT_BLOCKS` blocks regardless of ``n``.
    """

    n: int
    row_block: int

    #: Worst-case simultaneously resident blocks: the pinned row block, the
    #: current column block, and the prefetched next block (whose raw
    #: float64 form and prepared state briefly coexist inside ``prepare``).
    RESIDENT_BLOCKS = 4

    def __post_init__(self) -> None:
        if self.n < 0 or self.row_block <= 0:
            raise ValueError("need n >= 0 and row_block > 0")

    @classmethod
    def from_budget(
        cls, n: int, dim: int, memory_budget_bytes: int, *, itemsize: int = 8
    ) -> "TilePlan":
        """Choose ``row_block`` so peak resident data fits the budget.

        The budget covers the streamed blocks only (``RESIDENT_BLOCKS``
        float64 blocks of ``row_block`` rows, plus one spare column per row
        for the per-block norm vectors); the result pairs themselves grow
        with the join's output and are accounted separately by
        ``PairAccumulator.nbytes``.
        """
        if memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        per_row = max(1, (dim + 1) * itemsize)
        row_block = memory_budget_bytes // (cls.RESIDENT_BLOCKS * per_row)
        return cls(n=n, row_block=int(max(1, min(row_block, max(n, 1)))))

    @property
    def n_blocks(self) -> int:
        return -(-self.n // self.row_block) if self.n else 0

    @property
    def n_tiles(self) -> int:
        nb = self.n_blocks
        return nb * (nb + 1) // 2

    def block_bounds(self, bi: int) -> tuple[int, int]:
        """Row range ``(r0, r1)`` of block ``bi``."""
        r0 = bi * self.row_block
        return r0, min(r0 + self.row_block, self.n)

    def blocks(self) -> Iterator[tuple[int, int]]:
        for bi in range(self.n_blocks):
            yield self.block_bounds(bi)

    def tiles(self) -> Iterator[tuple[int, int]]:
        """Upper-triangle block-index pairs ``(ri, cj)`` in execution order."""
        for ri in range(self.n_blocks):
            for cj in range(ri, self.n_blocks):
                yield ri, cj

    def peak_resident_bytes(self, dim: int, *, itemsize: int = 8) -> int:
        """Upper bound on simultaneously resident streamed-block bytes."""
        return self.RESIDENT_BLOCKS * self.row_block * (dim + 1) * itemsize


@dataclass
class StreamStats:
    """What a streaming executor actually did (for tests and reporting).

    ``plan`` is a :class:`TilePlan` for self-joins and a
    :class:`RectTilePlan` for two-source joins; source-backed index builds
    (``GridIndex.from_source``) account their pass loads here too.
    """

    plan: Any
    blocks_loaded: int = 0
    tiles_evaluated: int = 0
    peak_resident_bytes: int = 0
    _resident_bytes: int = field(default=0, repr=False)
    _lock: Any = field(default_factory=threading.Lock, repr=False)

    def _acquire(self, nbytes: int) -> None:
        # The prefetch thread and the main loop both account blocks.
        with self._lock:
            self._resident_bytes += nbytes
            if self._resident_bytes > self.peak_resident_bytes:
                self.peak_resident_bytes = self._resident_bytes

    def _release(self, nbytes: int) -> None:
        with self._lock:
            self._resident_bytes -= nbytes


def _state_nbytes(state: Any) -> int:
    """Total ndarray bytes reachable from a prepared block state."""
    if isinstance(state, np.ndarray):
        return state.nbytes
    if isinstance(state, (tuple, list)):
        return sum(_state_nbytes(s) for s in state)
    return 0


def streaming_self_join(
    source,
    eps2: float,
    prepare: BlockPrepareFn,
    block_sq_dists: BlockDistFn,
    *,
    plan: TilePlan | None = None,
    row_block: int = 2048,
    memory_budget_bytes: int | None = None,
    store_distances: bool = True,
    prefetch: bool = True,
    acc: PairAccumulator | None = None,
) -> tuple[PairAccumulator, StreamStats]:
    """Out-of-core symmetric self-join over a :class:`~repro.data.source.DatasetSource`.

    Same tile geometry and pair extraction as :func:`symmetric_self_join`,
    but the dataset never has to be resident: row blocks are loaded from
    ``source`` on demand following a :class:`TilePlan`, the next block is
    prefetched on a background thread while the current tile's GEMM runs,
    and at most :data:`TilePlan.RESIDENT_BLOCKS` blocks are alive at once.
    Results are bit-identical to the in-memory executor for the kernels'
    numerics (per-row preparation and per-tile GEMM shapes are unchanged;
    tests/test_streaming.py pins this).

    Parameters
    ----------
    source:
        :class:`repro.data.source.DatasetSource` (or anything exposing
        ``n``, ``dim`` and ``load_block``).
    eps2:
        Squared radius in the kernel's working precision.
    prepare:
        Per-block kernel state builder; see :data:`BlockPrepareFn`.  Called
        once per block *load* (on the prefetch thread when prefetching).
    block_sq_dists:
        Kernel numerics over two prepared states; see :data:`BlockDistFn`.
    plan:
        Explicit tile plan; overrides ``row_block``/``memory_budget_bytes``.
    row_block:
        Tile edge when no plan/budget is given.
    memory_budget_bytes:
        When given, derive the plan with :meth:`TilePlan.from_budget` so
        peak resident streamed data stays under the budget.
    store_distances:
        Track per-pair squared distances.
    prefetch:
        Overlap the next block's load+prepare with the current GEMM
        (single background thread; deterministic commit order either way).
    acc:
        Emit into this accumulator instead of a fresh one -- the hook for
        disk-spilling accumulators
        (``PairAccumulator(spill_threshold_bytes=...)``) when the output
        itself outgrows memory.  ``store_distances`` is ignored when an
        accumulator is supplied.

    Returns
    -------
    (PairAccumulator, StreamStats)
        The accumulated pairs and the observed load/residency statistics.
    """
    n, dim = int(source.n), int(source.dim)
    if plan is None:
        if memory_budget_bytes is not None:
            plan = TilePlan.from_budget(n, dim, int(memory_budget_bytes))
        else:
            plan = TilePlan(n=n, row_block=int(row_block))
    stats = StreamStats(plan=plan)
    if acc is None:
        acc = PairAccumulator(store_distances=store_distances)
    store_distances = acc.store_distances
    nb = plan.n_blocks
    if nb == 0:
        return acc, stats

    def load(bi: int) -> tuple[Any, int]:
        r0, r1 = plan.block_bounds(bi)
        raw = source.load_block(r0, r1)
        stats._acquire(raw.nbytes)
        state = prepare(raw)
        nbytes = _state_nbytes(state)
        stats._acquire(nbytes)
        stats._release(raw.nbytes)  # raw block dies with this frame
        stats.blocks_loaded += 1
        return state, nbytes

    # Block-load sequence: row block ri, then its column blocks ri+1..nb-1,
    # for each row stripe.  A 1-deep pipeline prefetches loads[k+1] while
    # tile k computes.
    loads: list[int] = []
    for ri in range(nb):
        loads.append(ri)
        loads.extend(range(ri + 1, nb))
    pool = ThreadPoolExecutor(max_workers=1) if prefetch and len(loads) > 1 else None
    try:
        futures: deque = deque()
        cursor = 0

        def schedule_next() -> None:
            nonlocal cursor
            if pool is not None and cursor < len(loads):
                futures.append(pool.submit(load, loads[cursor]))
                cursor += 1

        def next_block() -> tuple[Any, int]:
            nonlocal cursor
            if pool is None:
                blk = load(loads[cursor])
                cursor += 1
                return blk
            if not futures:
                schedule_next()
            blk = futures.popleft().result()
            schedule_next()  # keep the pipeline primed
            return blk

        schedule_next()
        for ri in range(nb):
            row_state, row_nbytes = next_block()
            r0, r1 = plan.block_bounds(ri)
            for cj in range(ri, nb):
                if cj == ri:
                    col_state, col_nbytes = row_state, 0
                else:
                    col_state, col_nbytes = next_block()
                c0, _c1 = plan.block_bounds(cj)
                d2 = block_sq_dists(row_state, col_state)
                gi, gj, dd = _extract_pairs(d2, r0, c0, eps2, store_distances)
                acc.append(gi, gj, dd)
                if c0 != r0:
                    acc.append(gj, gi, dd)
                stats.tiles_evaluated += 1
                if col_nbytes:
                    stats._release(col_nbytes)
            stats._release(row_nbytes)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    return acc, stats


@dataclass(frozen=True)
class RectTilePlan:
    """Schedule of block loads for an out-of-core two-source join ``A x B``.

    The rectangular counterpart of :class:`TilePlan`: the left set's
    ``n_rows`` rows are cut into ``row_block``-sized blocks and the right
    set's ``n_cols`` rows into ``col_block``-sized blocks, independently --
    there is no symmetry to exploit, so **every** ``(ri, cj)`` block pair
    is a tile and nothing is mirrored.  Processing row block ``ri`` pins it
    for the whole stripe while all of ``B``'s column blocks stream through,
    so ``A`` is read once and ``B`` once per row stripe; peak residency is
    bounded by :data:`RESIDENT_BLOCKS` blocks regardless of either size.
    """

    n_rows: int
    n_cols: int
    row_block: int
    col_block: int

    #: Worst-case simultaneously resident blocks: the pinned row block, the
    #: current column block, and the prefetched next block (whose raw
    #: float64 form and prepared state briefly coexist inside ``prepare``).
    RESIDENT_BLOCKS = 4

    def __post_init__(self) -> None:
        if self.n_rows < 0 or self.n_cols < 0:
            raise ValueError("need n_rows >= 0 and n_cols >= 0")
        if self.row_block <= 0 or self.col_block <= 0:
            raise ValueError("row_block and col_block must be positive")

    @classmethod
    def from_budget(
        cls,
        n_rows: int,
        n_cols: int,
        dim: int,
        memory_budget_bytes: int,
        *,
        itemsize: int = 8,
    ) -> "RectTilePlan":
        """Choose equal block edges so peak resident data fits the budget.

        Same accounting as :meth:`TilePlan.from_budget`: the budget covers
        the :data:`RESIDENT_BLOCKS` streamed float64 blocks (plus one spare
        column per row for per-block norm vectors); result growth is
        accounted separately by ``PairAccumulator.nbytes``.
        """
        if memory_budget_bytes <= 0:
            raise ValueError("memory_budget_bytes must be positive")
        per_row = max(1, (dim + 1) * itemsize)
        block = memory_budget_bytes // (cls.RESIDENT_BLOCKS * per_row)
        block = int(max(1, block))
        return cls(
            n_rows=n_rows,
            n_cols=n_cols,
            row_block=min(block, max(n_rows, 1)),
            col_block=min(block, max(n_cols, 1)),
        )

    @property
    def n_row_blocks(self) -> int:
        return -(-self.n_rows // self.row_block) if self.n_rows else 0

    @property
    def n_col_blocks(self) -> int:
        return -(-self.n_cols // self.col_block) if self.n_cols else 0

    @property
    def n_tiles(self) -> int:
        return self.n_row_blocks * self.n_col_blocks

    def row_bounds(self, ri: int) -> tuple[int, int]:
        """Row range ``(r0, r1)`` of left-set block ``ri``."""
        r0 = ri * self.row_block
        return r0, min(r0 + self.row_block, self.n_rows)

    def col_bounds(self, cj: int) -> tuple[int, int]:
        """Row range ``(c0, c1)`` of right-set block ``cj``."""
        c0 = cj * self.col_block
        return c0, min(c0 + self.col_block, self.n_cols)

    def tiles(self) -> Iterator[tuple[int, int]]:
        """Block-index pairs ``(ri, cj)`` in execution order (row-major)."""
        for ri in range(self.n_row_blocks):
            for cj in range(self.n_col_blocks):
                yield ri, cj

    def peak_resident_bytes(self, dim: int, *, itemsize: int = 8) -> int:
        """Upper bound on simultaneously resident streamed-block bytes."""
        edge = max(self.row_block, self.col_block)
        return self.RESIDENT_BLOCKS * edge * (dim + 1) * itemsize


def iter_rect_tiles(
    n_rows: int, n_cols: int, row_block: int, col_block: int
) -> Iterator[tuple[int, int, int, int]]:
    """All tile coordinates ``(r0, r1, c0, c1)`` of the A x B grid, row-major."""
    for r0 in range(0, n_rows, row_block):
        r1 = min(r0 + row_block, n_rows)
        for c0 in range(0, n_cols, col_block):
            yield r0, r1, c0, min(c0 + col_block, n_cols)


def rect_join(
    n_rows: int,
    n_cols: int,
    eps2: float,
    tile_fn: TileFn,
    *,
    row_block: int = 2048,
    col_block: int | None = None,
    store_distances: bool = True,
    acc: PairAccumulator | None = None,
) -> PairAccumulator:
    """In-memory two-source join: every tile of the rectangular grid.

    The A x B counterpart of :func:`symmetric_self_join`.  ``tile_fn(r0,
    r1, c0, c1)`` returns the squared-distance block between rows
    ``[r0:r1]`` of the left set and rows ``[c0:c1]`` of the right set;
    pairs are emitted in the single direction ``(i in A, j in B)`` and the
    tile diagonal is *never* cleared -- equal indices address different
    points of the two sets.
    """
    if acc is None:
        acc = PairAccumulator(store_distances=store_distances)
    store_distances = acc.store_distances
    if col_block is None:
        col_block = row_block
    for r0, r1, c0, c1 in iter_rect_tiles(n_rows, n_cols, row_block, col_block):
        gi, gj, dd = _extract_pairs(
            tile_fn(r0, r1, c0, c1), r0, c0, eps2, store_distances,
            clear_diagonal=False,
        )
        acc.append(gi, gj, dd)
    return acc


def streaming_join(
    source_a,
    source_b,
    eps2: float,
    prepare: BlockPrepareFn,
    block_sq_dists: BlockDistFn,
    *,
    plan: RectTilePlan | None = None,
    row_block: int = 2048,
    col_block: int | None = None,
    memory_budget_bytes: int | None = None,
    store_distances: bool = True,
    prefetch: bool = True,
    acc: PairAccumulator | None = None,
) -> tuple[PairAccumulator, StreamStats]:
    """Out-of-core two-source join over two :class:`~repro.data.source.DatasetSource`\\ s.

    Same tile geometry and pair extraction as :func:`rect_join`, but
    neither dataset has to be resident: each row block of ``source_a`` is
    pinned for one stripe while all of ``source_b``'s column blocks stream
    through, with the next block (of either source -- the prefetch
    pipeline spans both) loaded and prepared on a background thread while
    the current tile's GEMM runs.  At most
    :data:`RectTilePlan.RESIDENT_BLOCKS` blocks are alive at once, and
    results are bit-identical to :func:`rect_join` at the same plan for
    the kernels' numerics (per-block preparation is row-local and per-tile
    GEMM shapes are unchanged; tests/test_two_source.py pins this).

    Parameters
    ----------
    source_a, source_b:
        Left (query) and right dataset sources; their dimensionalities
        must match.
    eps2:
        Squared radius in the kernel's working precision.
    prepare:
        Per-block kernel state builder, applied to blocks of *both*
        sources; see :data:`BlockPrepareFn`.
    block_sq_dists:
        Kernel numerics over a prepared A-block and B-block.
    plan:
        Explicit rectangular plan; overrides
        ``row_block``/``col_block``/``memory_budget_bytes``.
    row_block, col_block:
        Independent block edges when no plan/budget is given
        (``col_block`` defaults to ``row_block``).
    memory_budget_bytes:
        Derive the plan with :meth:`RectTilePlan.from_budget` so peak
        resident streamed data stays under the budget.
    store_distances:
        Track per-pair squared distances (ignored when ``acc`` is given).
    prefetch:
        Overlap the next block's load+prepare with the current GEMM.
    acc:
        Emit into this accumulator (e.g. a disk-spilling one) instead of a
        fresh in-memory accumulator.

    Returns
    -------
    (PairAccumulator, StreamStats)
        Accumulated ``(i in A, j in B)`` pairs plus load/residency stats.
    """
    n_a, dim_a = int(source_a.n), int(source_a.dim)
    n_b, dim_b = int(source_b.n), int(source_b.dim)
    if dim_a != dim_b:
        raise ValueError(
            f"source dimensionalities disagree: {dim_a} != {dim_b}"
        )
    if plan is None:
        if memory_budget_bytes is not None:
            plan = RectTilePlan.from_budget(
                n_a, n_b, dim_a, int(memory_budget_bytes)
            )
        else:
            plan = RectTilePlan(
                n_rows=n_a,
                n_cols=n_b,
                row_block=int(row_block),
                col_block=int(col_block if col_block is not None else row_block),
            )
    stats = StreamStats(plan=plan)
    if acc is None:
        acc = PairAccumulator(store_distances=store_distances)
    store_distances = acc.store_distances
    nbr, nbc = plan.n_row_blocks, plan.n_col_blocks
    if nbr == 0 or nbc == 0:
        return acc, stats

    def load(which: str, bi: int) -> tuple[Any, int]:
        if which == "a":
            r0, r1 = plan.row_bounds(bi)
            raw = source_a.load_block(r0, r1)
        else:
            c0, c1 = plan.col_bounds(bi)
            raw = source_b.load_block(c0, c1)
        stats._acquire(raw.nbytes)
        state = prepare(raw)
        nbytes = _state_nbytes(state)
        stats._acquire(nbytes)
        stats._release(raw.nbytes)  # raw block dies with this frame
        stats.blocks_loaded += 1
        return state, nbytes

    # Block-load sequence: row block ri of A, then every column block of B,
    # per row stripe.  The 1-deep prefetch pipeline spans both sources --
    # while the last tile of a stripe computes, the *next A row block* is
    # already loading.
    loads: list[tuple[str, int]] = []
    for ri in range(nbr):
        loads.append(("a", ri))
        loads.extend(("b", cj) for cj in range(nbc))
    pool = ThreadPoolExecutor(max_workers=1) if prefetch and len(loads) > 1 else None
    try:
        futures: deque = deque()
        cursor = 0

        def schedule_next() -> None:
            nonlocal cursor
            if pool is not None and cursor < len(loads):
                futures.append(pool.submit(load, *loads[cursor]))
                cursor += 1

        def next_block() -> tuple[Any, int]:
            nonlocal cursor
            if pool is None:
                blk = load(*loads[cursor])
                cursor += 1
                return blk
            if not futures:
                schedule_next()
            blk = futures.popleft().result()
            schedule_next()  # keep the pipeline primed
            return blk

        schedule_next()
        for ri in range(nbr):
            row_state, row_nbytes = next_block()
            r0, _r1 = plan.row_bounds(ri)
            for cj in range(nbc):
                col_state, col_nbytes = next_block()
                c0, _c1 = plan.col_bounds(cj)
                d2 = block_sq_dists(row_state, col_state)
                gi, gj, dd = _extract_pairs(
                    d2, r0, c0, eps2, store_distances, clear_diagonal=False
                )
                acc.append(gi, gj, dd)
                stats.tiles_evaluated += 1
                stats._release(col_nbytes)
            stats._release(row_nbytes)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)
    return acc, stats


def candidate_self_join(
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    dist_fn: GroupDistFn,
    eps2: float,
    *,
    store_distances: bool = True,
    candidate_chunk: int | None = None,
    on_group: Callable[[np.ndarray, np.ndarray], None] | None = None,
) -> PairAccumulator:
    """Index-backed self-join over ``(members, candidates)`` groups.

    Parameters
    ----------
    groups:
        Iterable of ``(members, candidates)`` global-index arrays, as
        produced by ``GridIndex.iter_cells`` or ``MultiSpaceTree.iter_groups``.
    dist_fn:
        Kernel numerics; see :data:`GroupDistFn`.
    eps2:
        Squared radius in the kernel's working precision.
    store_distances:
        Track per-pair squared distances.
    candidate_chunk:
        Evaluate at most this many candidates per ``dist_fn`` call to bound
        the temporary block (None: whole group at once).
    on_group:
        Statistics hook invoked once per nonempty group *before* evaluation
        -- kernels use it to tally candidate counts / sampling without a
        second index pass.
    """
    acc = PairAccumulator(store_distances=store_distances)
    for members, candidates in groups:
        if members.size == 0 or candidates.size == 0:
            continue
        if on_group is not None:
            on_group(members, candidates)
        chunk = candidate_chunk or candidates.size
        for c0 in range(0, candidates.size, chunk):
            cand = candidates[c0 : c0 + chunk]
            _emit_group_pairs(
                acc, dist_fn(members, cand), members, cand, eps2, store_distances
            )
    return acc


def _emit_group_pairs(
    acc: PairAccumulator,
    d2: np.ndarray,
    members: np.ndarray,
    candidates: np.ndarray,
    eps2: float,
    store_distances: bool,
    *,
    drop_self: bool = True,
) -> None:
    """Filter one evaluated candidate block and append its in-range pairs.

    The single definition of the group pair-extraction semantics (eps2
    inclusive, float32 distances) shared by the per-group executor, the
    batched executor's large-group bypass, and the two-source executor.
    ``drop_self`` removes ``gi == gj`` pairs -- the self-join convention;
    two-source joins keep them because equal indices address different
    points.
    """
    mask = d2 <= eps2
    mi, cj = np.nonzero(mask)
    gi = members[mi]
    gj = candidates[cj]
    if drop_self:
        keep = gi != gj
        gi, gj = gi[keep], gj[keep]
        dd = d2[mi, cj][keep].astype(np.float32) if store_distances else None
    else:
        dd = d2[mi, cj].astype(np.float32) if store_distances else None
    acc.append(gi, gj, dd)


def candidate_join(
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    dist_fn: GroupDistFn,
    eps2: float,
    *,
    store_distances: bool = True,
    candidate_chunk: int | None = None,
    on_group: Callable[[np.ndarray, np.ndarray], None] | None = None,
    acc: PairAccumulator | None = None,
) -> PairAccumulator:
    """Index-backed two-source join over ``(queries, candidates)`` groups.

    The A x B counterpart of :func:`candidate_self_join`: ``groups`` pairs
    query-point indices (into the left set) with candidate indices (into
    the right set), as produced by ``GridIndex.iter_join_groups`` /
    ``MultiSpaceTree.iter_join_groups``, and ``dist_fn(queries,
    candidates)`` returns the cross-set squared-distance block.  Identical
    filtering semantics except that no self pairs exist to drop -- equal
    indices address different points of the two sets.
    """
    if acc is None:
        acc = PairAccumulator(store_distances=store_distances)
    store_distances = acc.store_distances
    for members, candidates in groups:
        if members.size == 0 or candidates.size == 0:
            continue
        if on_group is not None:
            on_group(members, candidates)
        chunk = candidate_chunk or candidates.size
        for c0 in range(0, candidates.size, chunk):
            cand = candidates[c0 : c0 + chunk]
            _emit_group_pairs(
                acc, dist_fn(members, cand), members, cand, eps2,
                store_distances, drop_self=False,
            )
    return acc


def batched_candidate_self_join(
    groups: Iterable[tuple[np.ndarray, np.ndarray]],
    work: np.ndarray,
    sq_norms: np.ndarray,
    eps2: float,
    *,
    store_distances: bool = True,
    batch_elems: int = 1 << 20,
    max_batch_groups: int = 512,
    single_elems: int = 1 << 12,
    min_fill: float = 0.35,
    on_group: Callable[[np.ndarray, np.ndarray], None] | None = None,
) -> PairAccumulator:
    """Index-backed self-join with small groups fused into padded batch GEMMs.

    :func:`candidate_self_join` issues one GEMM per ``(members,
    candidates)`` group; at small eps the grid degenerates into thousands
    of tiny groups and the join becomes Python-call overhead, not BLAS.
    This executor buffers consecutive small groups and evaluates each
    buffer as **one padded batch GEMM** -- groups are zero-padded to the
    buffer's max member/candidate counts and multiplied as a stacked
    ``(g, M, d) @ (g, d, C)`` ``np.matmul``, the host analogue of the GPU
    kernels dispatching fixed 8x8 tiles.  Padded rows carry ``+inf`` norms
    so they can never pass the ``eps^2`` filter; real entries go through
    the exact same norm-expansion recombination as the per-group path.

    The pair *set* matches :func:`candidate_self_join` on the same groups
    (tests/test_streaming.py pins this); individual low-order distance
    bits may differ in FP32 because BLAS may reassociate differently for
    the padded shapes, which is the same caveat as ``row_block`` changes
    on the symmetric executor.

    Parameters
    ----------
    groups:
        Iterable of ``(members, candidates)`` global-index arrays.  Feeding
        size-sorted groups (``GridIndex.iter_cells(order="size")``) keeps
        padding waste low.
    work:
        ``(n, d)`` dataset in the kernel's working precision.
    sq_norms:
        ``(n,)`` squared norms of ``work`` rows, in the same precision and
        reduction order the kernel's per-group path uses.
    eps2:
        Squared radius in the kernel's working precision.
    store_distances:
        Track per-pair squared distances.
    batch_elems:
        Flush a buffer before its padded ``g * M * C`` distance block would
        exceed this many elements.
    max_batch_groups:
        Hard cap on groups per flush (bounds the Python-side gather loop).
    single_elems:
        Groups whose own ``members * candidates`` exceeds this bypass
        batching and run as one plain GEMM -- a group that large amortizes
        its own BLAS call, and padding it would waste more than the call
        overhead it saves.
    min_fill:
        Flush before the buffer's fill ratio (real ``sum(m*c)`` over
        padded ``g * M * C``) would drop below this -- the guard that
        keeps heterogeneous group shapes from turning padding into more
        work than batching saves.
    on_group:
        Statistics hook, called once per nonempty group in input order.
    """
    acc = PairAccumulator(store_distances=store_distances)
    d = work.shape[1]
    norm_dtype = sq_norms.dtype
    # Bypassed (large) groups chunk their candidate axis like the
    # per-group executor does, so a dense cell cannot blow up a single
    # (members x candidates) temporary.
    single_chunk = max(1, GROUP_CHUNK_ELEMS // max(d, 1))

    def run_single(members: np.ndarray, candidates: np.ndarray) -> None:
        wm = work[members]
        sm = sq_norms[members]
        for c0 in range(0, candidates.size, single_chunk):
            cand = candidates[c0 : c0 + single_chunk]
            d2 = norm_expansion_sq_dists(sm, sq_norms[cand], wm @ work[cand].T)
            _emit_group_pairs(acc, d2, members, cand, eps2, store_distances)

    batch: list[tuple[np.ndarray, np.ndarray]] = []
    batch_m = batch_c = batch_fill = 0

    def flush() -> None:
        nonlocal batch, batch_m, batch_c, batch_fill
        if not batch:
            return
        if len(batch) == 1:
            run_single(*batch[0])
            batch, batch_m, batch_c, batch_fill = [], 0, 0, 0
            return
        g = len(batch)
        p = np.zeros((g, batch_m, d), dtype=work.dtype)
        q = np.zeros((g, batch_c, d), dtype=work.dtype)
        sm = np.full((g, batch_m), np.inf, dtype=norm_dtype)
        sc = np.full((g, batch_c), np.inf, dtype=norm_dtype)
        mi_idx = np.zeros((g, batch_m), dtype=np.int64)
        cj_idx = np.zeros((g, batch_c), dtype=np.int64)
        for k, (members, candidates) in enumerate(batch):
            m, c = members.size, candidates.size
            p[k, :m] = work[members]
            q[k, :c] = work[candidates]
            sm[k, :m] = sq_norms[members]
            sc[k, :c] = sq_norms[candidates]
            mi_idx[k, :m] = members
            cj_idx[k, :c] = candidates
        gram = np.matmul(p, q.transpose(0, 2, 1))
        # Same elementwise order as norm_expansion_sq_dists, batched.
        t = sm[:, :, None] + sc[:, None, :]
        np.multiply(gram, 2.0, out=gram)
        np.subtract(t, gram, out=gram)
        np.maximum(gram, 0.0, out=gram)
        # Padded rows/cols have inf norms -> inf distance -> filtered here.
        mask = gram <= eps2
        gk, mi, cj = np.nonzero(mask)
        gi = mi_idx[gk, mi]
        gj = cj_idx[gk, cj]
        keep = gi != gj
        dd = gram[gk, mi, cj][keep].astype(np.float32) if store_distances else None
        acc.append(gi[keep], gj[keep], dd)
        batch, batch_m, batch_c, batch_fill = [], 0, 0, 0

    for members, candidates in groups:
        if members.size == 0 or candidates.size == 0:
            continue
        if on_group is not None:
            on_group(members, candidates)
        mc = members.size * candidates.size
        if mc > single_elems:
            flush()  # preserve group order across the two paths
            run_single(members, candidates)
            continue
        new_m = max(batch_m, members.size)
        new_c = max(batch_c, candidates.size)
        padded = (len(batch) + 1) * new_m * new_c
        if batch and (
            padded > batch_elems
            or len(batch) >= max_batch_groups
            or (batch_fill + mc) < min_fill * padded
        ):
            flush()
            new_m, new_c = members.size, candidates.size
        batch.append((members, candidates))
        batch_m, batch_c, batch_fill = new_m, new_c, batch_fill + mc
    flush()
    return acc
