"""Accuracy metrics for mixed-precision results (paper Section 4.6).

Two measures compare FaSTED's FP16-32 results against an FP64 ground truth
(the paper uses GDS-Join in FP64 mode):

* **Overlap accuracy** (Eq. 3): mean over points of the Jaccard overlap
  between the two neighbor sets, with the convention that two empty sets
  overlap perfectly.
* **Distance-error statistics** (Table 8 / Figure 11): mean and standard
  deviation of ``dist_mixed - dist_fp64`` over the pairs present in *both*
  result sets, plus the raw error vector for histogramming.

Both are implemented with sorted-key set algebra (no Python-level per-pair
loops), so they scale to millions of result pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import NeighborResult


def _pair_keys(res: NeighborResult) -> np.ndarray:
    """Unique int64 key per directed pair (i, j)."""
    return res.pairs_i * np.int64(res.n_points) + res.pairs_j


def overlap_accuracy(res: NeighborResult, truth: NeighborResult) -> float:
    """Paper Eq. 3: mean per-point intersection-over-union of neighbor sets.

    Points whose neighbor set is empty in both results score 1.0 (the
    intersection equals the union); any asymmetry scores below 1.
    """
    if res.n_points != truth.n_points:
        raise ValueError("results cover different datasets")
    n = res.n_points
    ka = np.unique(_pair_keys(res))
    kb = np.unique(_pair_keys(truth))
    common = np.intersect1d(ka, kb, assume_unique=True)
    cnt_a = np.bincount((ka // n).astype(np.int64), minlength=n)
    cnt_b = np.bincount((kb // n).astype(np.int64), minlength=n)
    cnt_common = np.bincount((common // n).astype(np.int64), minlength=n)
    union = cnt_a + cnt_b - cnt_common
    scores = np.ones(n, dtype=np.float64)
    nonempty = union > 0
    scores[nonempty] = cnt_common[nonempty] / union[nonempty]
    return float(scores.mean())


@dataclass(frozen=True)
class DistanceErrorStats:
    """Distance-error summary over pairs common to both result sets."""

    mean: float
    std: float
    n_pairs: int
    errors: np.ndarray  # per-pair dist_mixed - dist_truth (float64)

    def histogram(self, bins: int = 61) -> tuple[np.ndarray, np.ndarray]:
        """Symmetric histogram of the errors (Figure 11)."""
        if self.errors.size == 0:
            return np.zeros(bins), np.linspace(-1, 1, bins + 1)
        lim = float(np.abs(self.errors).max()) or 1e-12
        return np.histogram(self.errors, bins=bins, range=(-lim, lim))


def distance_error_stats(
    res: NeighborResult, truth: NeighborResult
) -> DistanceErrorStats:
    """Error of computed distances over the intersection of result sets.

    Both results must have been produced with ``store_distances=True``;
    distances are compared as true (square-rooted) distances, matching the
    paper's definition ``dist_FaSTED - dist_GDS-Join``.
    """
    if res.n_points != truth.n_points:
        raise ValueError("results cover different datasets")
    if res.sq_dists.size == 0 or truth.sq_dists.size == 0:
        raise ValueError("both results must store distances")
    ka = _pair_keys(res)
    kb = _pair_keys(truth)
    # Deduplicate while keeping one distance per key.
    ua, ia = np.unique(ka, return_index=True)
    ub, ib = np.unique(kb, return_index=True)
    common, ca, cb = np.intersect1d(ua, ub, assume_unique=True, return_indices=True)
    da = np.sqrt(res.sq_dists[ia[ca]].astype(np.float64))
    db = np.sqrt(truth.sq_dists[ib[cb]].astype(np.float64))
    err = da - db
    if err.size == 0:
        return DistanceErrorStats(0.0, 0.0, 0, err)
    return DistanceErrorStats(
        mean=float(err.mean()),
        std=float(err.std()),
        n_pairs=int(err.size),
        errors=err,
    )
