"""Selectivity calibration (paper Section 4.1.3).

The paper standardizes experiments across datasets by *selectivity*
``S = (|R| - |D|) / |D|`` -- the mean number of (non-self) neighbors per
point -- choosing per-dataset epsilon values that hit S in {64, 128, 256}.
This module inverts that relationship on a dataset: since

    S(eps) = |D| * P(dist <= eps) - 1

over the pairwise-distance distribution, the epsilon for a target S is the
``(S + 1) / |D|`` quantile of pairwise distances, which we estimate from a
row sample (every sampled point contributes its distances to *all* points,
so the estimate is unbiased for the pooled distribution).
"""

from __future__ import annotations

import numpy as np


def sampled_pairwise_distances(
    data: np.ndarray, *, sample: int = 1024, seed: int = 0, block: int = 256
) -> np.ndarray:
    """Distances from a row sample to the full dataset (self excluded).

    Returns a flat float64 array of ``sample * (n - 1)`` distances.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    take = min(sample, n)
    rng = np.random.default_rng(seed)
    rows = rng.choice(n, size=take, replace=False)
    sq_norms = (data * data).sum(axis=1)
    out = []
    for b0 in range(0, take, block):
        idx = rows[b0 : b0 + block]
        d2 = sq_norms[idx][:, None] + sq_norms[None, :] - 2.0 * (data[idx] @ data.T)
        np.maximum(d2, 0.0, out=d2)
        d2[np.arange(idx.size), idx] = np.inf  # drop self distances
        out.append(np.sqrt(d2[np.isfinite(d2)]))
    return np.concatenate(out)


def epsilon_for_selectivity(
    data: np.ndarray,
    selectivity: float,
    *,
    sample: int = 1024,
    seed: int = 0,
) -> float:
    """Epsilon whose self-join has (approximately) the target selectivity.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    selectivity:
        Target mean non-self neighbor count (paper: 64, 128 or 256).
    sample:
        Number of sampled query rows for the distance-distribution
        estimate.

    Returns
    -------
    float
        Calibrated search radius.
    """
    if selectivity <= 0:
        raise ValueError("selectivity must be positive")
    n = np.asarray(data).shape[0]
    if selectivity >= n - 1:
        raise ValueError("selectivity must be below |D| - 1")
    dists = sampled_pairwise_distances(data, sample=sample, seed=seed)
    q = selectivity / (n - 1)
    eps = float(np.quantile(dists, q))
    # The quantile of an empirical distribution is an *observed* distance,
    # so eps would sit exactly on a knife edge where FP32 and FP64
    # threshold rounding can disagree about that one pair.  Nudge the
    # radius off the edge (relative 1e-9 is far below any physical
    # meaning of the radius but clears the tie).
    return eps * (1.0 + 1e-9)


def measured_selectivity(n_pairs: int, n_points: int) -> float:
    """Selectivity of a result with ``n_pairs`` stored (non-self) pairs."""
    if n_points <= 0:
        return 0.0
    return n_pairs / n_points
