"""High-level public API of the reproduction.

One-call entry points over the four implementations:

>>> import numpy as np
>>> from repro import self_join, join, epsilon_for_selectivity
>>> data = np.random.default_rng(0).normal(size=(2000, 128))
>>> eps = epsilon_for_selectivity(data, 64)
>>> result = self_join(data, eps)                 # FaSTED (FP16-32)
>>> truth = self_join(data, eps, method="gds-join", precision="fp64")
>>> queries = np.random.default_rng(1).normal(size=(500, 128))
>>> matches = join(queries, data, eps)            # two-source A x B

Methods: ``"fasted"`` (default), ``"ted-join-brute"``, ``"ted-join-index"``,
``"gds-join"``, ``"mistic"`` -- the five rows of paper Table 3.

Datasets may also be :class:`repro.data.source.DatasetSource` instances
(or paths to ``.npy`` files / chunk directories); with ``stream=True`` the
brute methods then run out-of-core, holding only ``memory_budget_bytes``
of the data resident (docs/ARCHITECTURE.md describes the dataflow -- for
:func:`self_join` the symmetric :class:`~repro.core.engine.TilePlan`, for
:func:`join` the rectangular :class:`~repro.core.engine.RectTilePlan`).
Setting the environment variable ``REPRO_STREAM=1`` flips the default to
streaming wherever it is defined -- the CI streaming leg runs the test
suite that way.  The index-backed methods materialize here; their
out-of-core modes (streamed grid/tree build + source row gathers) are the
kernel-level ``self_join_source`` entry points.

Every join accepts ``workers=`` -- ``0`` (serial, the default), an
explicit count, or ``"auto"`` to resolve a topology-aware
:class:`repro.core.engine.WorkerPlan` (cores, BLAS pinning,
``REPRO_WORKERS`` override, cache-fit tile edges).  Parallel execution is
bit-identical to serial for every method, with one set-level exception:
``batched=True`` combined with workers carries the batched executor's
pair-set contract (batch boundaries move with the partitioning).  The
CLI exposes the same knob as ``--workers``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.core.results import JoinResult, NeighborResult, PairAccumulator
from repro.core.selectivity import epsilon_for_selectivity
from repro.data.source import DatasetSource, as_source
from repro.gpusim.spec import DEFAULT_SPEC, GpuSpec

#: Valid method names (paper Table 3).
METHODS = ("fasted", "ted-join-brute", "ted-join-index", "gds-join", "mistic")

#: Methods with a tiled out-of-core (streaming) execution mode here: the
#: brute-force kernels.  The index-backed methods materialize at this API
#: level; out of core they run through their kernels' ``self_join_source``
#: (out-of-core grid/tree build via ``GridIndex.from_source`` /
#: ``MultiSpaceTree.from_source`` + on-demand source row gathers).
STREAMABLE_METHODS = ("fasted", "ted-join-brute")


def self_join(
    data: np.ndarray | DatasetSource | str | Path,
    eps: float,
    *,
    method: str = "fasted",
    precision: str | None = None,
    spec: GpuSpec = DEFAULT_SPEC,
    store_distances: bool = True,
    seed: int = 0,
    stream: bool | None = None,
    memory_budget_bytes: int | None = None,
    batched: bool = False,
    workers: int | str = 0,
) -> NeighborResult:
    """Distance-similarity self-join: all pairs within ``eps``.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset -- an ndarray, a
        :class:`~repro.data.source.DatasetSource`, or a path to a ``.npy``
        file / chunk directory (coerced with
        :func:`repro.data.source.as_source`).
    eps:
        Search radius.
    method:
        One of :data:`METHODS`.
    precision:
        Only meaningful for ``"gds-join"`` (``"fp32"`` default, ``"fp64"``
        for the accuracy ground truth).  The other methods have fixed
        precision per Table 3 (FaSTED: FP16-32; TED-Join: FP64;
        MiSTIC: FP32).
    spec:
        Simulated GPU model (affects only capacity checks functionally).
    store_distances:
        Keep per-pair squared distances on the result.
    seed:
        Seed for randomized index construction (MiSTIC pivots).
    stream:
        Run out-of-core (:data:`STREAMABLE_METHODS` only; bit-identical to
        the in-memory path).  ``None`` (default) follows the
        ``REPRO_STREAM`` environment variable where streaming is defined.
        Explicitly passing ``True`` for an index-backed method raises.
    memory_budget_bytes:
        Bound on resident streamed-block bytes; the tile plan is derived
        from it (:meth:`repro.core.engine.TilePlan.from_budget`).  Implies
        ``stream=True`` (a budget cannot be honored by materializing), so
        passing it for an index-backed method raises.
    batched:
        Index-backed methods only: fuse small candidate groups into padded
        batch GEMMs (same pair set, faster at small eps).
    workers:
        Engine worker-pool request (``repro.core.engine.WorkerPlan``):
        ``0`` serial (the default), ``N`` for exactly N workers,
        ``"auto"`` to resolve from core topology / BLAS pinning /
        ``REPRO_WORKERS``.  Brute methods dispatch tiles to threads;
        index-backed methods fan candidate groups to a fork-based process
        pool.  Results are bit-identical to serial -- except combined
        with ``batched=True``, which keeps the batched executor's
        pair-*set* contract (batch boundaries move with the
        partitioning, so FP32 low-order distance bits and pair order may
        differ).

    Returns
    -------
    NeighborResult
        Non-self pairs within ``eps`` (both directions).
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}, got {method!r}")
    streamable = method in STREAMABLE_METHODS
    if memory_budget_bytes is not None:
        if stream is False:
            raise ValueError(
                "memory_budget_bytes cannot be honored with stream=False "
                "(materializing ignores the budget)"
            )
        stream = True  # a budget can only be honored by streaming
    if stream is None:
        stream = streamable and os.environ.get("REPRO_STREAM", "0") == "1"
    elif stream and not streamable:
        raise ValueError(
            f"stream=True (or memory_budget_bytes) is only supported for "
            f"{STREAMABLE_METHODS}; index-backed methods must materialize "
            "the dataset"
        )
    if batched and streamable:
        raise ValueError("batched=True applies to index-backed methods only")

    if stream:
        result, _stats = self_join_stream(
            data,
            eps,
            method=method,
            precision=precision,
            spec=spec,
            store_distances=store_distances,
            memory_budget_bytes=memory_budget_bytes,
            workers=workers,
        )
        return result
    if not isinstance(data, np.ndarray):
        data = as_source(data).materialize()

    if method == "fasted":
        from repro.kernels.fasted import FastedKernel

        if precision not in (None, "fp16-32"):
            raise ValueError("FaSTED is FP16-32 only")
        return FastedKernel(spec).self_join(
            data, eps, store_distances=store_distances, workers=workers
        )
    if method in ("ted-join-brute", "ted-join-index"):
        from repro.kernels.tedjoin import TedJoinKernel

        if precision not in (None, "fp64"):
            raise ValueError("TED-Join is FP64 only")
        variant = "brute" if method.endswith("brute") else "index"
        return TedJoinKernel(spec, variant=variant).self_join(
            data, eps, store_distances=store_distances, workers=workers,
            **({"batched": batched} if variant == "index" else {}),
        ).result
    if method == "gds-join":
        from repro.kernels.gdsjoin import GdsJoinKernel

        return GdsJoinKernel(spec, precision=precision or "fp32").self_join(
            data, eps, store_distances=store_distances, batched=batched,
            workers=workers,
        ).result
    from repro.kernels.mistic import MisticKernel

    if precision not in (None, "fp32"):
        raise ValueError("MiSTIC is FP32 only")
    return MisticKernel(spec, seed=seed).self_join(
        data, eps, store_distances=store_distances, batched=batched,
        workers=workers,
    ).result


def self_join_stream(
    data: np.ndarray | DatasetSource | str | Path,
    eps: float,
    *,
    method: str = "fasted",
    precision: str | None = None,
    spec: GpuSpec = DEFAULT_SPEC,
    store_distances: bool = True,
    memory_budget_bytes: int | None = None,
    spill_threshold_bytes: int | None = None,
    spill_dir: str | Path | None = None,
    workers: int | str = 0,
):
    """Out-of-core self-join returning ``(NeighborResult, StreamStats)``.

    The streaming counterpart of :func:`self_join` for callers that need
    the residency statistics (peak resident bytes, blocks loaded) --
    ``python -m repro join --stream`` reports them from here.  Only
    :data:`STREAMABLE_METHODS` stream; results are bit-identical to the
    in-memory path at the same tile plan.

    ``spill_threshold_bytes`` (optionally with ``spill_dir``) routes the
    result through a disk-spilling
    :class:`~repro.core.results.PairAccumulator`, bounding resident
    *result* memory during accumulation exactly as :func:`join_stream`
    does for two-source joins (the returned ``NeighborResult`` still
    materializes).  ``workers`` overlaps tile GEMMs with the block
    prefetch (bit-identical; see :func:`self_join`).
    """
    if method not in STREAMABLE_METHODS:
        raise ValueError(
            f"method must be one of {STREAMABLE_METHODS} to stream, got {method!r}"
        )
    source = as_source(data)
    acc = None
    if spill_threshold_bytes is not None:
        acc = PairAccumulator(
            store_distances=store_distances,
            spill_threshold_bytes=spill_threshold_bytes,
            spill_dir=spill_dir,
        )
    try:
        if method == "fasted":
            from repro.kernels.fasted import FastedKernel

            if precision not in (None, "fp16-32"):
                raise ValueError("FaSTED is FP16-32 only")
            return FastedKernel(spec).self_join_stream(
                source,
                eps,
                store_distances=store_distances,
                memory_budget_bytes=memory_budget_bytes,
                acc=acc,
                workers=workers,
            )
        from repro.kernels.tedjoin import TedJoinKernel

        if precision not in (None, "fp64"):
            raise ValueError("TED-Join is FP64 only")
        joined, stats = TedJoinKernel(spec, variant="brute").self_join_stream(
            source,
            eps,
            store_distances=store_distances,
            memory_budget_bytes=memory_budget_bytes,
            acc=acc,
            workers=workers,
        )
        return joined.result, stats
    except BaseException:
        # Never strand spill chunks when the stream dies mid-join (I/O
        # error, interrupt): the accumulator was created here, so it is
        # cleaned up here.  Successful runs clean up in finalize.
        if acc is not None:
            acc.cleanup()
        raise


def join(
    a: np.ndarray | DatasetSource | str | Path,
    b: np.ndarray | DatasetSource | str | Path,
    eps: float,
    *,
    method: str = "fasted",
    precision: str | None = None,
    spec: GpuSpec = DEFAULT_SPEC,
    store_distances: bool = True,
    seed: int = 0,
    stream: bool | None = None,
    memory_budget_bytes: int | None = None,
    workers: int | str = 0,
) -> JoinResult:
    """Two-source distance-similarity join: pairs ``(i in A, j in B)``.

    The general A x B counterpart of :func:`self_join`: every returned
    pair relates a point of the left set ``a`` to a point of the right
    set ``b`` (one direction only -- there is no diagonal and nothing is
    mirrored).  The brute methods run the rectangular tiled executor;
    the index-backed methods build their grid/tree over **B** and drop
    A's points into it.

    Parameters
    ----------
    a, b:
        ``(n_a, d)`` / ``(n_b, d)`` datasets -- ndarrays,
        :class:`~repro.data.source.DatasetSource` instances, or paths.
        Dimensionalities must match.
    eps:
        Search radius.
    method, precision, spec, store_distances, seed:
        As for :func:`self_join`.
    stream:
        Run out-of-core (:data:`STREAMABLE_METHODS` only; bit-identical to
        the in-memory path at the same tile plan).  ``None`` follows
        ``REPRO_STREAM`` where streaming is defined; explicitly passing
        ``True`` for an index-backed method raises.
    memory_budget_bytes:
        Bound on resident streamed-block bytes
        (:meth:`repro.core.engine.RectTilePlan.from_budget`); implies
        ``stream=True``.
    workers:
        Engine worker-pool request, as for :func:`self_join` (brute
        methods: thread tiles; index-backed: process-pool candidate
        groups; bit-identical to serial).

    Returns
    -------
    JoinResult
        Pairs within ``eps``, indices into A and B respectively.
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}, got {method!r}")
    streamable = method in STREAMABLE_METHODS
    if memory_budget_bytes is not None:
        if stream is False:
            raise ValueError(
                "memory_budget_bytes cannot be honored with stream=False "
                "(materializing ignores the budget)"
            )
        stream = True  # a budget can only be honored by streaming
    if stream is None:
        stream = streamable and os.environ.get("REPRO_STREAM", "0") == "1"
    elif stream and not streamable:
        raise ValueError(
            f"stream=True (or memory_budget_bytes) is only supported for "
            f"{STREAMABLE_METHODS}; index-backed methods materialize here "
            "(their out-of-core mode is the kernel-level self_join_source)"
        )

    if stream:
        result, _stats = join_stream(
            a,
            b,
            eps,
            method=method,
            precision=precision,
            spec=spec,
            store_distances=store_distances,
            memory_budget_bytes=memory_budget_bytes,
            workers=workers,
        )
        return result
    if not isinstance(a, np.ndarray):
        a = as_source(a).materialize()
    if not isinstance(b, np.ndarray):
        b = as_source(b).materialize()

    if method == "fasted":
        from repro.kernels.fasted import FastedKernel

        if precision not in (None, "fp16-32"):
            raise ValueError("FaSTED is FP16-32 only")
        return FastedKernel(spec).join(
            a, b, eps, store_distances=store_distances, workers=workers
        )
    if method in ("ted-join-brute", "ted-join-index"):
        from repro.kernels.tedjoin import TedJoinKernel

        if precision not in (None, "fp64"):
            raise ValueError("TED-Join is FP64 only")
        variant = "brute" if method.endswith("brute") else "index"
        return TedJoinKernel(spec, variant=variant).join(
            a, b, eps, store_distances=store_distances, workers=workers
        )
    if method == "gds-join":
        from repro.kernels.gdsjoin import GdsJoinKernel

        return GdsJoinKernel(spec, precision=precision or "fp32").join(
            a, b, eps, store_distances=store_distances, workers=workers
        )
    from repro.kernels.mistic import MisticKernel

    if precision not in (None, "fp32"):
        raise ValueError("MiSTIC is FP32 only")
    return MisticKernel(spec, seed=seed).join(
        a, b, eps, store_distances=store_distances, workers=workers
    )


def join_stream(
    a: np.ndarray | DatasetSource | str | Path,
    b: np.ndarray | DatasetSource | str | Path,
    eps: float,
    *,
    method: str = "fasted",
    precision: str | None = None,
    spec: GpuSpec = DEFAULT_SPEC,
    store_distances: bool = True,
    memory_budget_bytes: int | None = None,
    spill_threshold_bytes: int | None = None,
    spill_dir: str | Path | None = None,
    workers: int | str = 0,
):
    """Out-of-core two-source join returning ``(JoinResult, StreamStats)``.

    The streaming counterpart of :func:`join` for callers that need the
    residency statistics -- ``python -m repro join A B --stream`` reports
    them from here.  Only :data:`STREAMABLE_METHODS` stream; results are
    bit-identical to the in-memory path at the same tile plan.

    ``spill_threshold_bytes`` (optionally with ``spill_dir``) routes the
    result through a disk-spilling
    :class:`~repro.core.results.PairAccumulator`, bounding resident
    *result* memory during accumulation as the tile plan bounds the
    streamed blocks (the returned ``JoinResult`` still materializes; use
    the engine's accumulator directly with
    ``PairAccumulator.iter_chunks`` when even that cannot fit).
    """
    if method not in STREAMABLE_METHODS:
        raise ValueError(
            f"method must be one of {STREAMABLE_METHODS} to stream, got {method!r}"
        )
    source_a, source_b = as_source(a), as_source(b)
    acc = None
    if spill_threshold_bytes is not None:
        acc = PairAccumulator(
            store_distances=store_distances,
            spill_threshold_bytes=spill_threshold_bytes,
            spill_dir=spill_dir,
        )
    try:
        if method == "fasted":
            from repro.kernels.fasted import FastedKernel

            if precision not in (None, "fp16-32"):
                raise ValueError("FaSTED is FP16-32 only")
            return FastedKernel(spec).join_stream(
                source_a,
                source_b,
                eps,
                store_distances=store_distances,
                memory_budget_bytes=memory_budget_bytes,
                acc=acc,
                workers=workers,
            )
        from repro.kernels.tedjoin import TedJoinKernel

        if precision not in (None, "fp64"):
            raise ValueError("TED-Join is FP64 only")
        return TedJoinKernel(spec, variant="brute").join_stream(
            source_a,
            source_b,
            eps,
            store_distances=store_distances,
            memory_budget_bytes=memory_budget_bytes,
            acc=acc,
            workers=workers,
        )
    except BaseException:
        # Never strand spill chunks when the stream dies mid-join (I/O
        # error, interrupt): the accumulator was created here, so it is
        # cleaned up here.  Successful runs clean up in finalize_join.
        if acc is not None:
            acc.cleanup()
        raise


#: Module-level LRU of loaded query engines behind :func:`open_index`
#: (lazy; built with the default serving configuration on first use).
_INDEX_CACHE = None


def build_index(
    data: np.ndarray | DatasetSource | str | Path,
    eps: float,
    path: str | Path,
    *,
    kind: str = "grid",
    n_dims: int = 6,
    seed: int = 0,
    include_data: bool | None = None,
    data_path: str | Path | None = None,
    mutable: bool = False,
    seal_threshold: int | None = None,
) -> Path:
    """Build a query index over ``data`` and persist it to ``path``.

    The build-once half of the serving lifecycle: the resulting directory
    (see :mod:`repro.index.persist` for the format) is what
    :func:`open_index`, ``python -m repro query`` and ``python -m repro
    serve`` answer queries from.  Non-resident inputs (paths, sources)
    build **out of core** (``GridIndex.from_source`` /
    ``MultiSpaceTree.from_source``) and the dataset is embedded by a
    streamed copy, so the ``(n, d)`` array never materializes here.

    Parameters
    ----------
    data:
        Dataset -- ndarray, source, or path.
    eps:
        Grid cell width / bin width; queries at radii up to this are
        served (the serving cache keys indexes by this eps grid).
    path:
        Target directory.
    kind:
        ``"grid"`` (GDS-style epsilon grid, the default) or ``"mstree"``
        (MiSTIC multi-space tree).
    n_dims:
        Indexed dimension count (grid only).
    seed:
        Pivot RNG seed (mstree only).
    include_data:
        Embed a streamed dataset copy so the index directory is
        self-contained.  Defaults to True -- unless ``data_path`` is
        given, which implies a reference instead; passing both
        ``include_data=True`` and ``data_path`` is a contradiction and
        raises (a silent full copy is exactly what a path reference
        exists to avoid).  With neither, pass the dataset at query time.
    data_path:
        Reference this path instead of embedding (see
        :func:`repro.index.persist.save_index`).
    mutable:
        Build a **mutable** LSM-style store
        (:class:`repro.index.delta.MutableIndex`) instead of an
        immutable index directory: appends, tombstone deletes and
        compaction become available (``index append`` / ``index delete``
        / ``index compact``).  Mutable stores always embed their data
        (segments and compaction need it), so ``data_path`` and
        ``include_data=False`` are rejected.
    seal_threshold:
        Mutable only: buffered appends spill to a sealed on-disk segment
        past this row count.
    """
    from repro.index.grid import GridIndex
    from repro.index.mstree import MultiSpaceTree
    from repro.index.persist import save_index

    if kind not in ("grid", "mstree"):
        raise ValueError("kind must be 'grid' or 'mstree'")
    if mutable:
        from repro.index.delta import MutableIndex

        if data_path is not None or include_data is False:
            raise ValueError(
                "mutable stores embed their data; data_path/"
                "include_data=False do not apply"
            )
        kwargs = {"kind": kind, "n_dims": n_dims, "seed": seed}
        if seal_threshold is not None:
            kwargs["seal_threshold"] = int(seal_threshold)
        MutableIndex.create(path, data, eps, **kwargs)
        return Path(path)
    if seal_threshold is not None:
        raise ValueError("seal_threshold applies only with mutable=True")
    if data_path is not None:
        if include_data:
            raise ValueError(
                "include_data=True embeds a copy; data_path references a "
                "path -- pass one or the other"
            )
        include_data = False
    elif include_data is None:
        include_data = True
    resident = isinstance(data, np.ndarray)
    source = as_source(data)
    if kind == "grid":
        index = (
            GridIndex(data, eps, n_dims=n_dims)
            if resident
            else GridIndex.from_source(source, eps, n_dims=n_dims)
        )
    else:
        index = (
            MultiSpaceTree(data, eps, seed=seed)
            if resident
            else MultiSpaceTree.from_source(source, eps, seed=seed)
        )
    return save_index(
        index,
        path,
        data=source if include_data else None,
        data_path=None if include_data else data_path,
    )


def open_index(
    path: str | Path,
    *,
    mmap: bool = True,
    precision: str = "fp64",
    workers: int | str = 0,
    cache: bool = True,
    verify: str = "header",
):
    """Open a persisted index for querying; returns a ``QueryEngine``.

    A mutable store (built with ``build_index(..., mutable=True)``) opens
    as a :class:`repro.index.delta.MutableIndex` instead -- same
    ``range_query``/``knn_query`` surface, plus ``append``/``delete``/
    ``compact``.

    With ``cache=True`` (the default) engines come from a module-level
    LRU (``repro.service.IndexCache``) keyed by ``(path, eps, header
    digest)``, so repeated opens -- and every :func:`query` call
    addressed by path -- reuse the loaded, mmap-backed index instead of
    re-reading it; this is the cached-index fast path the
    ``query_service`` benchmark entry measures.  Non-default
    ``mmap``/``precision``/``workers``/``verify`` requests construct a
    private engine instead (the shared cache stays at the default
    serving configuration).

    ``verify`` is the integrity level applied at load
    (:func:`repro.index.persist.load_index`): ``"header"`` (default)
    stat-checks payload byte sizes, ``"full"`` re-hashes every payload
    against its SHA-256, ``"off"`` skips verification.  A failed check
    raises :class:`~repro.index.persist.CorruptIndexError` before any
    query runs.
    """
    from repro.index.delta import MutableIndex, is_mutable_index
    from repro.service import IndexCache, QueryEngine

    default_config = (
        mmap and precision == "fp64" and workers == 0 and verify == "header"
    )
    if not cache or not default_config:
        if is_mutable_index(path):
            return MutableIndex(
                path, precision=precision, workers=workers, mmap=mmap,
                verify=verify,
            )
        return QueryEngine(
            path, precision=precision, workers=workers, mmap=mmap,
            verify=verify,
        )
    global _INDEX_CACHE
    if _INDEX_CACHE is None:
        _INDEX_CACHE = IndexCache()
    return _INDEX_CACHE.get(path)


def query(
    index,
    queries,
    *,
    eps: float | None = None,
    k: int | None = None,
    workers: int | str | None = None,
    batched: bool = False,
):
    """Answer a batched range or kNN query against a (persisted) index.

    ``index`` is a ``QueryEngine`` (from :func:`open_index`) or a path to
    a persisted index directory (opened through the shared cache).  With
    ``k=None`` this is a range query -- eps-neighbors of every query
    point, ``eps`` defaulting to the index's radius, returned as a
    :class:`~repro.core.results.JoinResult`, bit-identical to the
    brute-force reference at the default FP64 serving precision.  With
    ``k`` set it returns the k nearest neighbors per query
    (``repro.service.KnnResult``) via the expanding-eps search.
    ``batched=True`` routes range queries through the padded-batch-GEMM
    executor (pair-set contract); ``workers``/``batched`` are
    range-query knobs -- requesting them for a kNN query raises rather
    than being silently ignored (the expanding search runs serially).
    """
    from repro.index.delta import MutableIndex
    from repro.service import QueryEngine

    engine = (
        index
        if isinstance(index, (QueryEngine, MutableIndex))
        else open_index(index)
    )
    if k is not None:
        if eps is not None:
            raise ValueError("pass eps (range query) or k (kNN), not both")
        if batched or workers:
            raise ValueError(
                "workers/batched apply to range queries; the kNN "
                "expanding search runs serially"
            )
        return engine.knn_query(queries, k)
    return engine.range_query(queries, eps, workers=workers, batched=batched)


def pairwise_sq_dists(
    a: np.ndarray, b: np.ndarray, *, precision: str = "fp16-32"
) -> np.ndarray:
    """Dense squared-distance matrix between two point sets.

    Exposes the paper's Step 1-3 pipeline as a standalone primitive for
    applications beyond the self-join (kNN, clustering, outlier detection).

    Parameters
    ----------
    a, b:
        ``(m, d)`` and ``(n, d)`` point sets.
    precision:
        ``"fp16-32"`` (FaSTED numerics), ``"fp32"`` or ``"fp64"``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError("inputs must be 2-D with matching dimensionality")
    if precision == "fp16-32":
        from repro.fp.fp16 import quantize_fp16
        from repro.fp.rounding import rz_sum_squares

        qa, qb = quantize_fp16(a), quantize_fp16(b)
        sa, sb = rz_sum_squares(a), rz_sum_squares(b)
        d2 = sa[:, None] + sb[None, :] - 2.0 * (qa @ qb.T)
    elif precision in ("fp32", "fp64"):
        dt = np.float32 if precision == "fp32" else np.float64
        wa, wb = a.astype(dt), b.astype(dt)
        sa = (wa * wa).sum(axis=1)
        sb = (wb * wb).sum(axis=1)
        d2 = sa[:, None] + sb[None, :] - 2.0 * (wa @ wb.T)
    else:
        raise ValueError(f"unknown precision {precision!r}")
    return np.maximum(d2, 0.0, out=d2)


__all__ = [
    "METHODS",
    "STREAMABLE_METHODS",
    "self_join",
    "self_join_stream",
    "join",
    "join_stream",
    "build_index",
    "open_index",
    "query",
    "pairwise_sq_dists",
    "epsilon_for_selectivity",
]
