"""High-level public API of the reproduction.

One-call entry points over the four implementations:

>>> import numpy as np
>>> from repro import self_join, epsilon_for_selectivity
>>> data = np.random.default_rng(0).normal(size=(2000, 128))
>>> eps = epsilon_for_selectivity(data, 64)
>>> result = self_join(data, eps)                 # FaSTED (FP16-32)
>>> truth = self_join(data, eps, method="gds-join", precision="fp64")

Methods: ``"fasted"`` (default), ``"ted-join-brute"``, ``"ted-join-index"``,
``"gds-join"``, ``"mistic"`` -- the five rows of paper Table 3.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import NeighborResult
from repro.core.selectivity import epsilon_for_selectivity
from repro.gpusim.spec import DEFAULT_SPEC, GpuSpec

#: Valid method names (paper Table 3).
METHODS = ("fasted", "ted-join-brute", "ted-join-index", "gds-join", "mistic")


def self_join(
    data: np.ndarray,
    eps: float,
    *,
    method: str = "fasted",
    precision: str | None = None,
    spec: GpuSpec = DEFAULT_SPEC,
    store_distances: bool = True,
    seed: int = 0,
) -> NeighborResult:
    """Distance-similarity self-join: all pairs within ``eps``.

    Parameters
    ----------
    data:
        ``(n, d)`` dataset.
    eps:
        Search radius.
    method:
        One of :data:`METHODS`.
    precision:
        Only meaningful for ``"gds-join"`` (``"fp32"`` default, ``"fp64"``
        for the accuracy ground truth).  The other methods have fixed
        precision per Table 3 (FaSTED: FP16-32; TED-Join: FP64;
        MiSTIC: FP32).
    spec:
        Simulated GPU model (affects only capacity checks functionally).
    store_distances:
        Keep per-pair squared distances on the result.
    seed:
        Seed for randomized index construction (MiSTIC pivots).

    Returns
    -------
    NeighborResult
        Non-self pairs within ``eps`` (both directions).
    """
    if method not in METHODS:
        raise ValueError(f"method must be one of {METHODS}, got {method!r}")
    if method == "fasted":
        from repro.kernels.fasted import FastedKernel

        if precision not in (None, "fp16-32"):
            raise ValueError("FaSTED is FP16-32 only")
        return FastedKernel(spec).self_join(
            data, eps, store_distances=store_distances
        )
    if method in ("ted-join-brute", "ted-join-index"):
        from repro.kernels.tedjoin import TedJoinKernel

        if precision not in (None, "fp64"):
            raise ValueError("TED-Join is FP64 only")
        variant = "brute" if method.endswith("brute") else "index"
        return TedJoinKernel(spec, variant=variant).self_join(
            data, eps, store_distances=store_distances
        ).result
    if method == "gds-join":
        from repro.kernels.gdsjoin import GdsJoinKernel

        return GdsJoinKernel(spec, precision=precision or "fp32").self_join(
            data, eps, store_distances=store_distances
        ).result
    from repro.kernels.mistic import MisticKernel

    if precision not in (None, "fp32"):
        raise ValueError("MiSTIC is FP32 only")
    return MisticKernel(spec, seed=seed).self_join(
        data, eps, store_distances=store_distances
    ).result


def pairwise_sq_dists(
    a: np.ndarray, b: np.ndarray, *, precision: str = "fp16-32"
) -> np.ndarray:
    """Dense squared-distance matrix between two point sets.

    Exposes the paper's Step 1-3 pipeline as a standalone primitive for
    applications beyond the self-join (kNN, clustering, outlier detection).

    Parameters
    ----------
    a, b:
        ``(m, d)`` and ``(n, d)`` point sets.
    precision:
        ``"fp16-32"`` (FaSTED numerics), ``"fp32"`` or ``"fp64"``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ValueError("inputs must be 2-D with matching dimensionality")
    if precision == "fp16-32":
        from repro.fp.fp16 import quantize_fp16
        from repro.fp.rounding import rz_sum_squares

        qa, qb = quantize_fp16(a), quantize_fp16(b)
        sa, sb = rz_sum_squares(a), rz_sum_squares(b)
        d2 = sa[:, None] + sb[None, :] - 2.0 * (qa @ qb.T)
    elif precision in ("fp32", "fp64"):
        dt = np.float32 if precision == "fp32" else np.float64
        wa, wb = a.astype(dt), b.astype(dt)
        sa = (wa * wa).sum(axis=1)
        sb = (wb * wb).sum(axis=1)
        d2 = sa[:, None] + sb[None, :] - 2.0 * (wa @ wb.T)
    else:
        raise ValueError(f"unknown precision {precision!r}")
    return np.maximum(d2, 0.0, out=d2)


__all__ = [
    "METHODS",
    "self_join",
    "pairwise_sq_dists",
    "epsilon_for_selectivity",
]
