"""Core public API: self-joins, selectivity calibration, accuracy metrics."""

from repro.core.accuracy import (
    DistanceErrorStats,
    distance_error_stats,
    overlap_accuracy,
)
from repro.core.api import (
    METHODS,
    STREAMABLE_METHODS,
    join,
    join_stream,
    pairwise_sq_dists,
    self_join,
    self_join_stream,
)
from repro.core.engine import (
    RectTilePlan,
    TilePlan,
    batched_candidate_self_join,
    candidate_join,
    candidate_self_join,
    norm_expansion_sq_dists,
    rect_join,
    streaming_join,
    streaming_self_join,
    symmetric_self_join,
)
from repro.core.results import (
    JoinResult,
    NeighborResult,
    PairAccumulator,
    from_dense_mask,
)
from repro.core.selectivity import (
    epsilon_for_selectivity,
    measured_selectivity,
    sampled_pairwise_distances,
)

__all__ = [
    "METHODS",
    "STREAMABLE_METHODS",
    "self_join",
    "self_join_stream",
    "join",
    "join_stream",
    "pairwise_sq_dists",
    "NeighborResult",
    "JoinResult",
    "PairAccumulator",
    "from_dense_mask",
    "TilePlan",
    "RectTilePlan",
    "symmetric_self_join",
    "candidate_self_join",
    "candidate_join",
    "batched_candidate_self_join",
    "streaming_self_join",
    "streaming_join",
    "rect_join",
    "norm_expansion_sq_dists",
    "epsilon_for_selectivity",
    "measured_selectivity",
    "sampled_pairwise_distances",
    "overlap_accuracy",
    "distance_error_stats",
    "DistanceErrorStats",
]
