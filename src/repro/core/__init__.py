"""Core public API: self-joins, selectivity calibration, accuracy metrics."""

from repro.core.accuracy import (
    DistanceErrorStats,
    distance_error_stats,
    overlap_accuracy,
)
from repro.core.api import METHODS, pairwise_sq_dists, self_join
from repro.core.engine import (
    candidate_self_join,
    norm_expansion_sq_dists,
    symmetric_self_join,
)
from repro.core.results import NeighborResult, PairAccumulator, from_dense_mask
from repro.core.selectivity import (
    epsilon_for_selectivity,
    measured_selectivity,
    sampled_pairwise_distances,
)

__all__ = [
    "METHODS",
    "self_join",
    "pairwise_sq_dists",
    "NeighborResult",
    "PairAccumulator",
    "from_dense_mask",
    "symmetric_self_join",
    "candidate_self_join",
    "norm_expansion_sq_dists",
    "epsilon_for_selectivity",
    "measured_selectivity",
    "sampled_pairwise_distances",
    "overlap_accuracy",
    "distance_error_stats",
    "DistanceErrorStats",
]
