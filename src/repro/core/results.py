"""Result-set containers for distance-similarity self-joins.

A self-join over dataset ``D`` with radius ``eps`` conceptually returns
``R = {(i, j) : dist(p_i, p_j) <= eps}``.  Following the paper's selectivity
definition ``S = (|R| - |D|) / |D|`` (Section 4.1.3), the trivial self pairs
``(i, i)`` are members of ``R``; we store only the non-self pairs and account
for the diagonal arithmetically, which keeps memory proportional to the
interesting output.

Pairs are stored as parallel ``int64`` arrays (structure-of-arrays -- the
HPC-friendly layout) with optional squared distances for accuracy studies.
:class:`PairAccumulator` is the builder used by the join engine: a
preallocated, geometrically grown buffer that replaces per-tile Python-list
appends plus one big ``concatenate`` with amortized O(1) bulk copies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class NeighborResult:
    """Self-join result: non-self pairs within ``eps`` plus metadata.

    Attributes
    ----------
    n_points:
        Dataset size |D|.
    eps:
        Search radius used.
    pairs_i, pairs_j:
        Parallel arrays of point indices; both directions ``(i, j)`` and
        ``(j, i)`` are present, matching what a GPU kernel would emit for
        each query point's neighbor list.
    sq_dists:
        Squared distances for each stored pair (optional; empty when the
        kernel was run with ``store_distances=False``).
    """

    n_points: int
    eps: float
    pairs_i: np.ndarray
    pairs_j: np.ndarray
    sq_dists: np.ndarray = field(default_factory=lambda: np.empty(0, np.float32))

    def __post_init__(self) -> None:
        self.pairs_i = np.asarray(self.pairs_i, dtype=np.int64)
        self.pairs_j = np.asarray(self.pairs_j, dtype=np.int64)
        if self.pairs_i.shape != self.pairs_j.shape:
            raise ValueError("pairs_i and pairs_j must be parallel arrays")
        if self.sq_dists.size and self.sq_dists.shape != self.pairs_i.shape:
            raise ValueError("sq_dists must parallel the pair arrays")

    @property
    def total_result_size(self) -> int:
        """|R| including the |D| self pairs (the paper's result-set size)."""
        return int(self.pairs_i.size) + self.n_points

    @property
    def selectivity(self) -> float:
        """Paper Eq.: ``S = (|R| - |D|) / |D|`` = mean non-self neighbors."""
        if self.n_points == 0:
            return 0.0
        return self.pairs_i.size / self.n_points

    def neighbor_counts(self) -> np.ndarray:
        """Number of non-self neighbors of each point."""
        return np.bincount(self.pairs_i, minlength=self.n_points)

    def neighbor_sets(self) -> list[set[int]]:
        """Per-point neighbor sets (excluding self).

        Materializes Python sets -- intended for the accuracy metrics on
        moderate result sizes, not for hot paths.
        """
        sets: list[set[int]] = [set() for _ in range(self.n_points)]
        for i, j in zip(self.pairs_i.tolist(), self.pairs_j.tolist()):
            sets[i].add(j)
        return sets

    def neighbors_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Neighbor lists in CSR form ``(indptr, indices)``, sorted by query.

        The vectorized counterpart of :meth:`neighbor_sets`, used by the
        overlap-accuracy metric at scale.
        """
        order = np.lexsort((self.pairs_j, self.pairs_i))
        indices = self.pairs_j[order]
        counts = np.bincount(self.pairs_i, minlength=self.n_points)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return indptr, indices

    def symmetric(self) -> bool:
        """True when every stored pair appears in both directions."""
        fwd = set(zip(self.pairs_i.tolist(), self.pairs_j.tolist()))
        return all((j, i) in fwd for (i, j) in fwd)

    def sorted_copy(self) -> "NeighborResult":
        """Pairs sorted lexicographically -- convenient for comparisons."""
        order = np.lexsort((self.pairs_j, self.pairs_i))
        sq = self.sq_dists[order] if self.sq_dists.size else self.sq_dists
        return NeighborResult(
            n_points=self.n_points,
            eps=self.eps,
            pairs_i=self.pairs_i[order],
            pairs_j=self.pairs_j[order],
            sq_dists=sq,
        )


class PairAccumulator:
    """Growable structure-of-arrays buffer for join result pairs.

    The join kernels emit pairs tile by tile; collecting them in Python
    lists and concatenating at the end costs one object + one array header
    per tile and a full extra copy at finalization.  This accumulator keeps
    three preallocated arrays (``i``, ``j``, optional squared distance) and
    doubles capacity on demand, so emitting a tile is a bounds check plus
    bulk slice assignments.

    Parameters
    ----------
    store_distances:
        Track a float32 squared distance per pair.
    capacity:
        Initial capacity in pairs.
    """

    __slots__ = ("_i", "_j", "_d", "_size")

    def __init__(self, *, store_distances: bool = True, capacity: int = 1024) -> None:
        capacity = max(int(capacity), 1)
        self._i = np.empty(capacity, dtype=np.int64)
        self._j = np.empty(capacity, dtype=np.int64)
        self._d = np.empty(capacity, dtype=np.float32) if store_distances else None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def store_distances(self) -> bool:
        return self._d is not None

    @property
    def capacity(self) -> int:
        return self._i.size

    @property
    def nbytes(self) -> int:
        """Currently allocated buffer bytes (the streaming memory reports
        account result growth separately from the streamed blocks)."""
        return self._i.nbytes + self._j.nbytes + (self._d.nbytes if self._d is not None else 0)

    def _reserve(self, extra: int) -> None:
        need = self._size + extra
        cap = self._i.size
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("_i", "_j", "_d"):
            old = getattr(self, name)
            if old is None:
                continue
            new = np.empty(cap, dtype=old.dtype)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)

    def append(
        self,
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        sq_dists: np.ndarray | None = None,
    ) -> None:
        """Bulk-append parallel pair arrays (and distances when tracked)."""
        m = len(pairs_i)
        if len(pairs_j) != m:
            raise ValueError("pairs_i and pairs_j must be parallel arrays")
        if self._d is not None and (sq_dists is None or len(sq_dists) != m):
            raise ValueError("sq_dists required (and parallel) when tracked")
        if m == 0:
            return
        self._reserve(m)
        s, e = self._size, self._size + m
        self._i[s:e] = pairs_i
        self._j[s:e] = pairs_j
        if self._d is not None:
            self._d[s:e] = sq_dists
        self._size = e

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compacted ``(pairs_i, pairs_j, sq_dists)`` copies."""
        sq = (
            self._d[: self._size].copy()
            if self._d is not None
            else np.empty(0, np.float32)
        )
        return self._i[: self._size].copy(), self._j[: self._size].copy(), sq

    def finalize(self, n_points: int, eps: float) -> NeighborResult:
        """Build the :class:`NeighborResult` and release the buffers."""
        pairs_i, pairs_j, sq = self.arrays()
        return NeighborResult(
            n_points=n_points, eps=eps, pairs_i=pairs_i, pairs_j=pairs_j, sq_dists=sq
        )


def from_dense_mask(mask: np.ndarray, eps: float, sq_dists: np.ndarray | None = None) -> NeighborResult:
    """Build a :class:`NeighborResult` from a dense boolean neighbor mask.

    The diagonal is ignored (self pairs are implicit).  Used by tests and
    small reference computations.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2 or mask.shape[0] != mask.shape[1]:
        raise ValueError("mask must be square")
    m = mask.copy()
    np.fill_diagonal(m, False)
    ii, jj = np.nonzero(m)
    sq = (
        np.asarray(sq_dists, dtype=np.float32)[ii, jj]
        if sq_dists is not None
        else np.empty(0, np.float32)
    )
    return NeighborResult(
        n_points=mask.shape[0], eps=eps, pairs_i=ii, pairs_j=jj, sq_dists=sq
    )
