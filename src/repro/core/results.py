"""Result-set containers for distance-similarity joins.

A self-join over dataset ``D`` with radius ``eps`` conceptually returns
``R = {(i, j) : dist(p_i, p_j) <= eps}``.  Following the paper's selectivity
definition ``S = (|R| - |D|) / |D|`` (Section 4.1.3), the trivial self pairs
``(i, i)`` are members of ``R``; we store only the non-self pairs and account
for the diagonal arithmetically, which keeps memory proportional to the
interesting output.  A two-source join ``A x B`` (:class:`JoinResult`) has
no diagonal: every stored pair ``(i, j)`` relates point ``i`` of the left
set to point ``j`` of the right set, one direction only.

Pairs are stored as parallel ``int64`` arrays (structure-of-arrays -- the
HPC-friendly layout) with optional squared distances for accuracy studies.
:class:`PairAccumulator` is the builder used by the join engine: a
preallocated, geometrically grown buffer that replaces per-tile Python-list
appends plus one big ``concatenate`` with amortized O(1) bulk copies.  For
joins whose output outgrows RAM the accumulator can **spill to disk**
(``spill_threshold_bytes``): whenever the live buffer passes the threshold
it is written out as one chunk of ``.npy`` files and reset, so resident
result memory stays bounded by roughly the threshold while
:meth:`PairAccumulator.arrays` still presents one transparently
concatenated result (and :meth:`PairAccumulator.iter_chunks` lets
out-of-core consumers process the chunks without ever concatenating).
"""

from __future__ import annotations

import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np


@dataclass
class NeighborResult:
    """Self-join result: non-self pairs within ``eps`` plus metadata.

    Attributes
    ----------
    n_points:
        Dataset size |D|.
    eps:
        Search radius used.
    pairs_i, pairs_j:
        Parallel arrays of point indices; both directions ``(i, j)`` and
        ``(j, i)`` are present, matching what a GPU kernel would emit for
        each query point's neighbor list.
    sq_dists:
        Squared distances for each stored pair (optional; empty when the
        kernel was run with ``store_distances=False``).
    """

    n_points: int
    eps: float
    pairs_i: np.ndarray
    pairs_j: np.ndarray
    sq_dists: np.ndarray = field(default_factory=lambda: np.empty(0, np.float32))

    def __post_init__(self) -> None:
        self.pairs_i = np.asarray(self.pairs_i, dtype=np.int64)
        self.pairs_j = np.asarray(self.pairs_j, dtype=np.int64)
        if self.pairs_i.shape != self.pairs_j.shape:
            raise ValueError("pairs_i and pairs_j must be parallel arrays")
        if self.sq_dists.size and self.sq_dists.shape != self.pairs_i.shape:
            raise ValueError("sq_dists must parallel the pair arrays")

    @property
    def total_result_size(self) -> int:
        """|R| including the |D| self pairs (the paper's result-set size)."""
        return int(self.pairs_i.size) + self.n_points

    @property
    def selectivity(self) -> float:
        """Paper Eq.: ``S = (|R| - |D|) / |D|`` = mean non-self neighbors."""
        if self.n_points == 0:
            return 0.0
        return self.pairs_i.size / self.n_points

    def neighbor_counts(self) -> np.ndarray:
        """Number of non-self neighbors of each point."""
        return np.bincount(self.pairs_i, minlength=self.n_points)

    def neighbor_sets(self) -> list[set[int]]:
        """Per-point neighbor sets (excluding self).

        Materializes Python sets -- intended for the accuracy metrics on
        moderate result sizes, not for hot paths.
        """
        sets: list[set[int]] = [set() for _ in range(self.n_points)]
        for i, j in zip(self.pairs_i.tolist(), self.pairs_j.tolist()):
            sets[i].add(j)
        return sets

    def neighbors_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Neighbor lists in CSR form ``(indptr, indices)``, sorted by query.

        The vectorized counterpart of :meth:`neighbor_sets`, used by the
        overlap-accuracy metric at scale.
        """
        order = np.lexsort((self.pairs_j, self.pairs_i))
        indices = self.pairs_j[order]
        counts = np.bincount(self.pairs_i, minlength=self.n_points)
        indptr = np.concatenate(([0], np.cumsum(counts)))
        return indptr, indices

    def symmetric(self) -> bool:
        """True when every stored pair appears in both directions."""
        fwd = set(zip(self.pairs_i.tolist(), self.pairs_j.tolist()))
        return all((j, i) in fwd for (i, j) in fwd)

    def sorted_copy(self) -> "NeighborResult":
        """Pairs sorted lexicographically -- convenient for comparisons."""
        order = np.lexsort((self.pairs_j, self.pairs_i))
        sq = self.sq_dists[order] if self.sq_dists.size else self.sq_dists
        return NeighborResult(
            n_points=self.n_points,
            eps=self.eps,
            pairs_i=self.pairs_i[order],
            pairs_j=self.pairs_j[order],
            sq_dists=sq,
        )


@dataclass
class JoinResult:
    """Two-source join result: pairs ``(i in A, j in B)`` within ``eps``.

    Unlike :class:`NeighborResult` there is no diagonal to account for and
    no mirrored direction: index ``i`` addresses the left (query) set and
    ``j`` the right (indexed/streamed) set, so ``(i, j)`` and ``(j, i)``
    would be different pairs.  The field names mirror ``NeighborResult``
    so order-insensitive comparison helpers
    (``repro.kernels.reference.canon`` / ``joins_bit_identical``) work on
    both.
    """

    n_left: int
    n_right: int
    eps: float
    pairs_i: np.ndarray  # indices into the left set A
    pairs_j: np.ndarray  # indices into the right set B
    sq_dists: np.ndarray = field(default_factory=lambda: np.empty(0, np.float32))

    def __post_init__(self) -> None:
        self.pairs_i = np.asarray(self.pairs_i, dtype=np.int64)
        self.pairs_j = np.asarray(self.pairs_j, dtype=np.int64)
        if self.pairs_i.shape != self.pairs_j.shape:
            raise ValueError("pairs_i and pairs_j must be parallel arrays")
        if self.sq_dists.size and self.sq_dists.shape != self.pairs_i.shape:
            raise ValueError("sq_dists must parallel the pair arrays")

    @property
    def selectivity(self) -> float:
        """Mean matches per left point (the two-source analogue of S)."""
        if self.n_left == 0:
            return 0.0
        return self.pairs_i.size / self.n_left

    def match_counts(self) -> np.ndarray:
        """Number of right-set matches of each left point."""
        return np.bincount(self.pairs_i, minlength=self.n_left)

    def sorted_copy(self) -> "JoinResult":
        """Pairs sorted lexicographically -- convenient for comparisons."""
        order = np.lexsort((self.pairs_j, self.pairs_i))
        sq = self.sq_dists[order] if self.sq_dists.size else self.sq_dists
        return JoinResult(
            n_left=self.n_left,
            n_right=self.n_right,
            eps=self.eps,
            pairs_i=self.pairs_i[order],
            pairs_j=self.pairs_j[order],
            sq_dists=sq,
        )


class PairAccumulator:
    """Growable structure-of-arrays buffer for join result pairs.

    The join kernels emit pairs tile by tile; collecting them in Python
    lists and concatenating at the end costs one object + one array header
    per tile and a full extra copy at finalization.  This accumulator keeps
    three preallocated arrays (``i``, ``j``, optional squared distance) and
    doubles capacity on demand, so emitting a tile is a bounds check plus
    bulk slice assignments.

    With ``spill_threshold_bytes`` set, the accumulator spills: whenever
    the *used* buffer bytes reach the threshold after an append, the live
    pairs are written out as one chunk of ``.npy`` files
    (``spill_00000_i.npy`` / ``_j.npy`` / ``_d.npy`` under ``spill_dir``)
    and the in-memory buffer is reset to its initial capacity.  Append
    order is preserved across chunks, so a spilling run yields exactly the
    same :meth:`arrays` as a non-spilling one (pinned by
    tests/test_two_source.py); only the resident footprint changes.
    Spilled files are removed by :meth:`cleanup` (called automatically by
    the finalizers); the directory itself is removed only when the
    accumulator created it.  :meth:`append` is thread-safe -- spill
    rotation included -- so the accumulator can sit behind the engine's
    multi-worker executors.

    Parameters
    ----------
    store_distances:
        Track a float32 squared distance per pair.
    capacity:
        Initial capacity in pairs.
    spill_threshold_bytes:
        Spill the live buffer to disk once its used bytes reach this
        (None: never spill -- the default, fully in-memory behavior).
    spill_dir:
        Directory for spill chunks (created if missing).  When None and
        spilling is enabled, a private temporary directory is created and
        removed again by :meth:`cleanup`.
    """

    __slots__ = (
        "_i", "_j", "_d", "_size", "_initial_capacity",
        "_spill_threshold", "_spill_dir", "_spill_dir_owned", "_chunks",
        "_spilled_pairs", "_lock",
    )

    def __init__(
        self,
        *,
        store_distances: bool = True,
        capacity: int = 1024,
        spill_threshold_bytes: int | None = None,
        spill_dir: str | Path | None = None,
    ) -> None:
        capacity = max(int(capacity), 1)
        self._i = np.empty(capacity, dtype=np.int64)
        self._j = np.empty(capacity, dtype=np.int64)
        self._d = np.empty(capacity, dtype=np.float32) if store_distances else None
        self._size = 0
        self._initial_capacity = capacity
        if spill_threshold_bytes is not None and spill_threshold_bytes <= 0:
            raise ValueError("spill_threshold_bytes must be positive")
        self._spill_threshold = spill_threshold_bytes
        self._spill_dir = Path(spill_dir) if spill_dir is not None else None
        self._spill_dir_owned = False
        self._chunks: list[tuple[Path, Path, Path | None, int]] = []
        self._spilled_pairs = 0
        # Appends mutate the buffer cursor and, past the spill threshold,
        # rotate the whole buffer out to disk.  The engine's multi-worker
        # executors commit from one thread, but nothing stops a caller
        # from appending out of pool threads -- an unlocked append racing
        # a spill rotation would interleave half-written chunks, so every
        # append (including its potential spill) is serialized here.
        # Uncontended lock acquisition is noise next to the bulk copies.
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return self._spilled_pairs + self._size

    @property
    def store_distances(self) -> bool:
        return self._d is not None

    @property
    def capacity(self) -> int:
        return self._i.size

    @property
    def nbytes(self) -> int:
        """Currently allocated *resident* buffer bytes (spilled chunks are
        on disk; the streaming memory reports account result growth
        separately from the streamed blocks)."""
        return self._i.nbytes + self._j.nbytes + (self._d.nbytes if self._d is not None else 0)

    @property
    def n_spill_chunks(self) -> int:
        return len(self._chunks)

    @property
    def spilled_pairs(self) -> int:
        return self._spilled_pairs

    def _pair_bytes(self) -> int:
        """Bytes one stored pair occupies in the live buffer (from the
        buffers' own dtypes, so the spill accounting can never drift)."""
        return (
            self._i.itemsize
            + self._j.itemsize
            + (self._d.itemsize if self._d is not None else 0)
        )

    def _reserve(self, extra: int) -> None:
        need = self._size + extra
        cap = self._i.size
        if need <= cap:
            return
        while cap < need:
            cap *= 2
        for name in ("_i", "_j", "_d"):
            old = getattr(self, name)
            if old is None:
                continue
            new = np.empty(cap, dtype=old.dtype)
            new[: self._size] = old[: self._size]
            setattr(self, name, new)

    def _ensure_spill_dir(self) -> Path:
        if self._spill_dir is None:
            self._spill_dir = Path(tempfile.mkdtemp(prefix="repro-spill-"))
            self._spill_dir_owned = True
        else:
            self._spill_dir.mkdir(parents=True, exist_ok=True)
        return self._spill_dir

    def _spill(self) -> None:
        """Write the live pairs out as one chunk and reset the buffer."""
        if self._size == 0:
            return
        directory = self._ensure_spill_dir()
        k = len(self._chunks)
        path_i = directory / f"spill_{k:05d}_i.npy"
        path_j = directory / f"spill_{k:05d}_j.npy"
        np.save(path_i, self._i[: self._size])
        np.save(path_j, self._j[: self._size])
        path_d = None
        if self._d is not None:
            path_d = directory / f"spill_{k:05d}_d.npy"
            np.save(path_d, self._d[: self._size])
        self._chunks.append((path_i, path_j, path_d, self._size))
        self._spilled_pairs += self._size
        self._size = 0
        if self._i.size > self._initial_capacity:  # release the grown buffer
            self._i = np.empty(self._initial_capacity, dtype=np.int64)
            self._j = np.empty(self._initial_capacity, dtype=np.int64)
            if self._d is not None:
                self._d = np.empty(self._initial_capacity, dtype=np.float32)

    def append(
        self,
        pairs_i: np.ndarray,
        pairs_j: np.ndarray,
        sq_dists: np.ndarray | None = None,
    ) -> None:
        """Bulk-append parallel pair arrays (and distances when tracked).

        Thread-safe: concurrent appends (e.g. from pool threads) are
        serialized, including any spill rotation an append triggers, so a
        spill-enabled accumulator never interleaves chunks mid-append.
        """
        m = len(pairs_i)
        if len(pairs_j) != m:
            raise ValueError("pairs_i and pairs_j must be parallel arrays")
        if self._d is not None and (sq_dists is None or len(sq_dists) != m):
            raise ValueError("sq_dists required (and parallel) when tracked")
        if m == 0:
            return
        with self._lock:
            self._reserve(m)
            s, e = self._size, self._size + m
            self._i[s:e] = pairs_i
            self._j[s:e] = pairs_j
            if self._d is not None:
                self._d[s:e] = sq_dists
            self._size = e
            if (
                self._spill_threshold is not None
                and self._size * self._pair_bytes() >= self._spill_threshold
            ):
                self._spill()

    def iter_chunks(self):
        """Yield ``(pairs_i, pairs_j, sq_dists)`` per chunk, append order.

        Spilled chunks are loaded one at a time, followed by the live
        tail -- the consumption path for results too large to concatenate
        (at most one chunk is resident per step).  ``sq_dists`` is an empty
        array when distances are not tracked.
        """
        empty = np.empty(0, np.float32)
        for path_i, path_j, path_d, _count in self._chunks:
            yield (
                np.load(path_i),
                np.load(path_j),
                np.load(path_d) if path_d is not None else empty,
            )
        if self._size:
            sq = self._d[: self._size].copy() if self._d is not None else empty
            yield self._i[: self._size].copy(), self._j[: self._size].copy(), sq

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compacted ``(pairs_i, pairs_j, sq_dists)`` copies.

        With spilled chunks this transparently concatenates them with the
        live tail (materializing the full result -- use
        :meth:`iter_chunks` when that cannot fit in memory).
        """
        if not self._chunks:
            sq = (
                self._d[: self._size].copy()
                if self._d is not None
                else np.empty(0, np.float32)
            )
            return self._i[: self._size].copy(), self._j[: self._size].copy(), sq
        parts = list(self.iter_chunks())
        if not parts:
            return (
                np.empty(0, np.int64),
                np.empty(0, np.int64),
                np.empty(0, np.float32),
            )
        pairs_i = np.concatenate([p[0] for p in parts])
        pairs_j = np.concatenate([p[1] for p in parts])
        sq = (
            np.concatenate([p[2] for p in parts])
            if self._d is not None
            else np.empty(0, np.float32)
        )
        return pairs_i, pairs_j, sq

    def __enter__(self) -> "PairAccumulator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Context-manager form for engine-level users: guarantees the
        # spill chunks are removed even when the join raises mid-stream.
        self.cleanup()

    def cleanup(self) -> None:
        """Delete spill chunk files (and the spill dir when it was created
        by this accumulator).  Idempotent; called by the finalizers."""
        for path_i, path_j, path_d, _count in self._chunks:
            for p in (path_i, path_j, path_d):
                if p is not None:
                    p.unlink(missing_ok=True)
        self._chunks = []
        if self._spill_dir_owned and self._spill_dir is not None:
            try:
                self._spill_dir.rmdir()
            except OSError:
                pass
            self._spill_dir = None
            self._spill_dir_owned = False

    def finalize(self, n_points: int, eps: float) -> NeighborResult:
        """Build the :class:`NeighborResult` and release the buffers."""
        pairs_i, pairs_j, sq = self.arrays()
        self.cleanup()
        return NeighborResult(
            n_points=n_points, eps=eps, pairs_i=pairs_i, pairs_j=pairs_j, sq_dists=sq
        )

    def finalize_join(self, n_left: int, n_right: int, eps: float) -> "JoinResult":
        """Build the two-source :class:`JoinResult` and release the buffers."""
        pairs_i, pairs_j, sq = self.arrays()
        self.cleanup()
        return JoinResult(
            n_left=n_left,
            n_right=n_right,
            eps=eps,
            pairs_i=pairs_i,
            pairs_j=pairs_j,
            sq_dists=sq,
        )


def from_dense_mask(mask: np.ndarray, eps: float, sq_dists: np.ndarray | None = None) -> NeighborResult:
    """Build a :class:`NeighborResult` from a dense boolean neighbor mask.

    The diagonal is ignored (self pairs are implicit).  Used by tests and
    small reference computations.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2 or mask.shape[0] != mask.shape[1]:
        raise ValueError("mask must be square")
    m = mask.copy()
    np.fill_diagonal(m, False)
    ii, jj = np.nonzero(m)
    sq = (
        np.asarray(sq_dists, dtype=np.float32)[ii, jj]
        if sq_dists is not None
        else np.empty(0, np.float32)
    )
    return NeighborResult(
        n_points=mask.shape[0], eps=eps, pairs_i=ii, pairs_j=jj, sq_dists=sq
    )
