"""Distance-based analytics built on the mixed-precision primitives.

The paper's introduction motivates fast Euclidean distances with four
application families -- "distance similarity searches, outlier detection,
k-nearest neighbor searches, and clustering".  The self-join covers the
first; this module provides the other three as small, well-tested
utilities over :func:`repro.core.api.pairwise_sq_dists` and
:class:`repro.core.results.NeighborResult`, so a downstream user gets the
whole motivating stack, not just the kernel.

All functions accept a ``precision`` argument (``"fp16-32"``, ``"fp32"``,
``"fp64"``) so the accuracy impact of mixed precision can be measured on
the application's own output -- the style of evaluation Section 4.6 uses.
"""

from __future__ import annotations

import numpy as np

from repro.core.api import pairwise_sq_dists
from repro.core.results import NeighborResult


def knn_search(
    queries: np.ndarray,
    data: np.ndarray,
    k: int,
    *,
    precision: str = "fp16-32",
    block: int = 1024,
) -> tuple[np.ndarray, np.ndarray]:
    """k-nearest-neighbor search (indices and distances).

    Parameters
    ----------
    queries:
        ``(m, d)`` query points.
    data:
        ``(n, d)`` dataset searched.
    k:
        Neighbors per query (``k <= n``).
    precision:
        Distance arithmetic; FaSTED's FP16-32 by default.
    block:
        Query rows processed per GEMM (memory knob only).

    Returns
    -------
    (indices, distances):
        ``(m, k)`` arrays, each query's neighbors sorted by distance.
    """
    queries = np.asarray(queries, dtype=np.float64)
    data = np.asarray(data, dtype=np.float64)
    if not 1 <= k <= data.shape[0]:
        raise ValueError("k must be in [1, n]")
    idx_out = np.empty((queries.shape[0], k), dtype=np.int64)
    dist_out = np.empty((queries.shape[0], k), dtype=np.float64)
    for q0 in range(0, queries.shape[0], block):
        q1 = min(q0 + block, queries.shape[0])
        d2 = pairwise_sq_dists(queries[q0:q1], data, precision=precision)
        part = np.argpartition(d2, k - 1, axis=1)[:, :k]
        rows = np.arange(q1 - q0)[:, None]
        order = np.argsort(d2[rows, part], axis=1)
        nearest = part[rows, order]
        idx_out[q0:q1] = nearest
        dist_out[q0:q1] = np.sqrt(d2[rows, nearest])
    return idx_out, dist_out


def knn_self(
    data: np.ndarray, k: int, *, precision: str = "fp16-32"
) -> tuple[np.ndarray, np.ndarray]:
    """kNN of every point within its own dataset, excluding itself."""
    idx, dist = knn_search(data, data, k + 1, precision=precision)
    n = data.shape[0]
    out_i = np.empty((n, k), dtype=np.int64)
    out_d = np.empty((n, k), dtype=np.float64)
    for i in range(n):
        row = idx[i]
        keep = row != i
        # The self column is distance ~0; if duplicates make it ambiguous,
        # drop exactly one occurrence of i.
        if keep.sum() == k + 1:
            first = int(np.argmax(row == i)) if (row == i).any() else 0
            keep = np.ones(k + 1, dtype=bool)
            keep[first] = False
        out_i[i] = row[keep][:k]
        out_d[i] = dist[i][keep][:k]
    return out_i, out_d


def knn_outlier_scores(
    data: np.ndarray, k: int = 16, *, precision: str = "fp16-32"
) -> np.ndarray:
    """Classic kNN-distance outlier score (Zimek et al.'s baseline family).

    The score of a point is its distance to its k-th nearest neighbor --
    large in sparse regions.  Returned scores are raw distances so callers
    can threshold or rank as they see fit.
    """
    _, dist = knn_self(data, k, precision=precision)
    return dist[:, -1]


def epsilon_neighborhood_counts(
    result: NeighborResult,
) -> np.ndarray:
    """Per-point eps-neighborhood sizes (including the point itself).

    The quantity DBSCAN cores on and the local-density estimate outlier
    detectors invert; computed straight from a self-join result.
    """
    return result.neighbor_counts() + 1
