"""Synthetic datasets (paper Table 4, bottom).

The paper's Synth family: ``|D| = 10^(3 + n/3)`` for ``n in 0..9`` (1000 to
1,000,000) crossed with ``d = 2^n`` for ``n in 6..12`` (64 to 4096).  These
drive the brute-force throughput experiments (Figures 8-9, Tables 5-6),
where the data *distribution* is irrelevant -- a brute-force method does
identical work for any values -- but the *values* still matter for the
functional path, so the generator produces well-conditioned FP16-friendly
uniform data by default and clustered data on request.
"""

from __future__ import annotations

import numpy as np

#: Paper's Synth dataset sizes: 10^(3 + n/3), n = 0..9.
SYNTH_SIZES: tuple[int, ...] = tuple(
    int(round(10 ** (3 + n / 3))) for n in range(10)
)

#: Paper's Synth dimensionalities: 2^n, n = 6..12.
SYNTH_DIMS: tuple[int, ...] = tuple(2**n for n in range(6, 13))


def synth_dataset(
    n: int,
    d: int,
    *,
    seed: int = 0,
    clustered: bool = False,
    n_clusters: int = 32,
) -> np.ndarray:
    """Generate a Synth dataset of ``n`` points in ``d`` dimensions.

    Parameters
    ----------
    n, d:
        Cardinality and dimensionality (any values, not only the paper
        grid).
    seed:
        RNG seed; generation is deterministic.
    clustered:
        When True, draw points around ``n_clusters`` Gaussian centers
        instead of uniformly -- useful when an index-supported method needs
        non-trivial pruning structure on synthetic data.

    Returns
    -------
    numpy.ndarray
        ``(n, d)`` float32 array with values in a comfortably FP16-safe
        range (|x| < 8).
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    rng = np.random.default_rng(seed)
    if not clustered:
        return rng.uniform(0.0, 1.0, size=(n, d)).astype(np.float32)
    centers = rng.uniform(0.0, 4.0, size=(n_clusters, d))
    assign = rng.integers(0, n_clusters, size=n)
    pts = centers[assign] + rng.normal(0.0, 0.15, size=(n, d))
    return pts.astype(np.float32)


def fine_grid_dataset(
    n: int,
    d: int,
    *,
    seed: int = 0,
    n_clusters: int = 512,
    variance_decay: float = 0.8,
    center_scale: float = 40.0,
    noise_scale: float = 0.6,
) -> np.ndarray:
    """Micro-clustered data with anisotropic (decaying) per-dimension variance.

    The workload the *batched* candidate executor targets: per-dimension
    scales fall off as ``(1 + k)^-variance_decay`` (like real descriptor
    datasets -- see :mod:`repro.data.realworld`), so the variance-ordered
    6-dimension grid prefix is highly discriminative, and a small eps
    shatters the dataset into thousands of occupied cells with a handful
    of points each.  In that regime per-cell GEMMs degenerate into Python
    call overhead, which is exactly what
    :func:`repro.core.engine.batched_candidate_self_join` amortizes
    (benchmarks/bench_engine_throughput.py measures this on
    ``fine_grid_dataset``).

    Returns ``(n, d)`` float64 (the kernels' input precision).
    """
    if n <= 0 or d <= 0:
        raise ValueError("n and d must be positive")
    rng = np.random.default_rng(seed)
    dim_scale = (1.0 + np.arange(d)) ** (-variance_decay)
    centers = rng.normal(0.0, center_scale, size=(n_clusters, d)) * dim_scale
    assign = rng.integers(0, n_clusters, size=n)
    pts = centers[assign] + rng.normal(0.0, noise_scale, size=(n, d)) * dim_scale
    return pts.astype(np.float64)
