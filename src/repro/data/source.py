"""Dataset sources: block-addressable access for the streaming executor.

The paper's batched result-transfer design assumes the dataset does not sit
in GPU memory all at once; the host streams it in block by block.  This
module is the host-side analogue for the join engine's out-of-core mode
(:func:`repro.core.engine.streaming_self_join`): a :class:`DatasetSource`
hands out contiguous float64 row blocks on demand, so the executor can keep
only ``O(row_block * d)`` rows resident regardless of dataset size.

Three sources cover the storage spectrum:

* :class:`ArraySource` -- an in-memory ndarray (the degenerate case; block
  loads are cheap contiguous copies).  Streaming an ``ArraySource`` is
  bit-identical to the in-memory executor and exists so the two paths can
  be compared directly.
* :class:`MmapNpySource` -- a single ``.npy`` file opened with
  ``numpy.load(..., mmap_mode="r")``.  The OS pages rows in lazily; only
  the requested block is ever copied into a real array.
* :class:`ChunkedNpySource` -- a directory of row-chunk ``.npy`` files
  (``chunk_00000.npy``, ``chunk_00001.npy``, ...) as written by
  :func:`write_chunked_npy`.  Each chunk is memory-mapped only while a
  block load overlaps it, so datasets far larger than RAM stream fine.

All sources normalize blocks to C-contiguous float64 -- exactly the
``np.ascontiguousarray(data, dtype=np.float64)`` the kernels apply to
in-memory inputs -- which is what makes the streamed results bit-identical
to the resident path (see docs/ARCHITECTURE.md).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import numpy as np

from repro import faults

#: Manifest file name written next to the chunks by :func:`write_chunked_npy`.
CHUNK_MANIFEST = "chunks.json"

_CHUNK_RE = re.compile(r"chunk_(\d+)\.npy$")


class DatasetSource:
    """Block-addressable view of an ``(n, d)`` dataset.

    Subclasses implement :meth:`load_block`; everything else (shape
    bookkeeping, whole-dataset materialization, byte estimates) is shared.
    """

    #: Number of rows (points).
    n: int
    #: Number of columns (dimensions).
    dim: int

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n, self.dim)

    @property
    def nbytes(self) -> int:
        """Size of the full dataset in float64 working precision."""
        return self.n * self.dim * 8

    def load_block(self, r0: int, r1: int) -> np.ndarray:
        """Return rows ``[r0:r1]`` as a fresh C-contiguous float64 array."""
        raise NotImplementedError

    def take(self, indices: np.ndarray) -> np.ndarray:
        """Gather arbitrary rows as a fresh C-contiguous float64 array.

        The random-access primitive the index-backed candidate executors
        use to evaluate ``(members, candidates)`` groups against on-disk
        data (``GridIndex.from_source``-built indexes hand out row indices,
        not rows).  Rows come back in the order of ``indices``; duplicate
        indices are allowed.  The generic implementation loads one
        contiguous covering run at a time, so only the touched row ranges
        are ever resident; subclasses override it with direct gathers.
        """
        indices = self._check_indices(indices)
        if indices.size == 0:
            return np.empty((0, self.dim), dtype=np.float64)
        out = np.empty((indices.size, self.dim), dtype=np.float64)
        order = np.argsort(indices, kind="stable")
        sorted_idx = indices[order]
        # Run boundaries in one shot (a gap > 1 ends a contiguous cover);
        # the Python loop below is O(runs), not O(indices).
        breaks = np.nonzero(np.diff(sorted_idx) > 1)[0] + 1
        bounds = np.concatenate(([0], breaks, [sorted_idx.size]))
        for run_start, run_end in zip(bounds[:-1], bounds[1:]):
            lo = int(sorted_idx[run_start])
            hi = int(sorted_idx[run_end - 1]) + 1
            block = self.load_block(lo, hi)
            out[order[run_start:run_end]] = block[sorted_idx[run_start:run_end] - lo]
        return out

    def materialize(self) -> np.ndarray:
        """Load the entire dataset (for the non-streaming / index paths)."""
        return self.load_block(0, self.n)

    def write_npy(self, path: str | Path, *, row_block: int = 65536) -> Path:
        """Stream the dataset into one float64 ``.npy`` file.

        Blocks are copied through a writable memory map
        (``numpy.lib.format.open_memmap``), so only ``row_block`` rows are
        ever resident no matter how large the source is.  Used by the
        index-persistence layer (:mod:`repro.index.persist`) to embed a
        dataset copy next to a saved index, where a later
        :class:`MmapNpySource` serves it back without loading it into RAM.
        """
        from numpy.lib.format import open_memmap

        path = Path(path)
        if self.n == 0:  # zero-length memory maps are platform-dependent
            np.save(path, np.empty((0, self.dim), dtype=np.float64))
            return path
        out = open_memmap(
            path, mode="w+", dtype=np.float64, shape=(self.n, self.dim)
        )
        try:
            for r0 in range(0, self.n, row_block):
                r1 = min(r0 + row_block, self.n)
                out[r0:r1] = self.load_block(r0, r1)
            out.flush()
        finally:
            del out  # close the map promptly (Windows holds the handle)
        return path

    # Every concrete load_block/take funnels through one of these two
    # validators, so they double as the `source.read` fault point: one
    # gate covers every source kind (in-memory, mmap, chunked).
    def _check_block(self, r0: int, r1: int) -> None:
        if faults.ARMED:
            faults.check("source.read")
        if not (0 <= r0 <= r1 <= self.n):
            raise IndexError(f"block [{r0}:{r1}] out of range for n={self.n}")

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        if faults.ARMED:
            faults.check("source.read")
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if indices.size and (indices.min() < 0 or indices.max() >= self.n):
            raise IndexError(f"row indices out of range for n={self.n}")
        return indices


class ArraySource(DatasetSource):
    """In-memory dataset: block loads are contiguous float64 copies."""

    def __init__(self, data: np.ndarray) -> None:
        data = np.asarray(data)
        if data.ndim != 2:
            raise ValueError("data must be (n, d)")
        self._data = data
        self.n, self.dim = data.shape

    def load_block(self, r0: int, r1: int) -> np.ndarray:
        self._check_block(r0, r1)
        # copy=True even when the slice is already contiguous float64: the
        # contract is a *fresh* array (callers may retain or mutate it),
        # and the streaming residency accounting assumes private blocks.
        return np.array(self._data[r0:r1], dtype=np.float64, order="C", copy=True)

    def take(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        return np.ascontiguousarray(self._data[indices], dtype=np.float64)


class MmapNpySource(DatasetSource):
    """Single ``.npy`` file, memory-mapped; blocks are copied out on demand."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._mmap = np.load(self.path, mmap_mode="r")
        if self._mmap.ndim != 2:
            raise ValueError(f"{self.path} must hold a 2-D array")
        self.n, self.dim = self._mmap.shape

    def load_block(self, r0: int, r1: int) -> np.ndarray:
        self._check_block(r0, r1)
        # copy=True: never hand out views of the file mapping (see
        # ArraySource.load_block).
        return np.array(self._mmap[r0:r1], dtype=np.float64, order="C", copy=True)

    def take(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        # Fancy indexing a memmap copies only the touched rows (the OS
        # pages in just those file regions), never the whole file.
        return np.ascontiguousarray(self._mmap[indices], dtype=np.float64)


class ChunkedNpySource(DatasetSource):
    """Directory of row-chunk ``.npy`` files (see :func:`write_chunked_npy`).

    Chunks are opened with ``mmap_mode="r"`` only while a block load
    overlaps them, so the resident footprint is the requested block alone.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        manifest = self.directory / CHUNK_MANIFEST
        if manifest.exists():
            meta = json.loads(manifest.read_text())
            names = meta["chunks"]
            self.dim = int(meta["dim"])
            rows = [int(r) for r in meta["rows"]]
        else:  # reconstruct from the files themselves
            names = sorted(
                p.name for p in self.directory.iterdir() if _CHUNK_RE.search(p.name)
            )
            if not names:
                raise FileNotFoundError(f"no chunk_*.npy files in {self.directory}")
            rows = []
            self.dim = -1
            for name in names:
                arr = np.load(self.directory / name, mmap_mode="r")
                if arr.ndim != 2:
                    raise ValueError(f"{name} must hold a 2-D array")
                if self.dim < 0:
                    self.dim = arr.shape[1]
                elif arr.shape[1] != self.dim:
                    raise ValueError("chunk dimensionalities disagree")
                rows.append(arr.shape[0])
        self._paths = [self.directory / name for name in names]
        self._starts = np.concatenate(([0], np.cumsum(rows))).astype(np.int64)
        self.n = int(self._starts[-1])

    def load_block(self, r0: int, r1: int) -> np.ndarray:
        self._check_block(r0, r1)
        out = np.empty((r1 - r0, self.dim), dtype=np.float64)
        # Chunks overlapping [r0, r1): binary-search the start offsets.
        first = int(np.searchsorted(self._starts, r0, side="right")) - 1
        row = r0
        while row < r1:
            c0 = int(self._starts[first])
            c1 = int(self._starts[first + 1])
            lo, hi = max(row, c0), min(r1, c1)
            chunk = np.load(self._paths[first], mmap_mode="r")
            out[lo - r0 : hi - r0] = chunk[lo - c0 : hi - c0]
            row = hi
            first += 1
        return out

    def take(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        out = np.empty((indices.size, self.dim), dtype=np.float64)
        if indices.size == 0:
            return out
        # Group the gather by owning chunk so each chunk is mapped once.
        owner = np.searchsorted(self._starts, indices, side="right") - 1
        for ci in np.unique(owner):
            sel = owner == ci
            chunk = np.load(self._paths[int(ci)], mmap_mode="r")
            out[sel] = chunk[indices[sel] - int(self._starts[int(ci)])]
        return out


def write_chunked_npy(
    directory: str | Path, data: np.ndarray, *, rows_per_chunk: int = 65536
) -> ChunkedNpySource:
    """Split ``data`` into row-chunk ``.npy`` files plus a manifest.

    The writer exists mainly for tests and data preparation; production
    pipelines would emit chunks as the data arrives and never hold the
    full array (each chunk only needs ``rows_per_chunk`` rows resident).
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError("data must be (n, d)")
    if rows_per_chunk <= 0:
        raise ValueError("rows_per_chunk must be positive")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    names, rows = [], []
    for k, r0 in enumerate(range(0, data.shape[0], rows_per_chunk)):
        name = f"chunk_{k:05d}.npy"
        block = data[r0 : r0 + rows_per_chunk]
        np.save(directory / name, block)
        names.append(name)
        rows.append(int(block.shape[0]))
    (directory / CHUNK_MANIFEST).write_text(
        json.dumps({"dim": int(data.shape[1]), "chunks": names, "rows": rows})
    )
    return ChunkedNpySource(directory)


def as_source(data) -> DatasetSource:
    """Coerce an ndarray / ``.npy`` path / chunk directory into a source."""
    if isinstance(data, DatasetSource):
        return data
    if isinstance(data, (str, Path)):
        path = Path(data)
        if path.is_dir():
            return ChunkedNpySource(path)
        return MmapNpySource(path)
    return ArraySource(np.asarray(data))
