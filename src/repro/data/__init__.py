"""Dataset generation: the Synth grid and real-world surrogates.

The paper evaluates on four public high-dimensional datasets (Sift10M,
Tiny5M, Cifar60K, Gist1M) and a synthetic family (Table 4).  The public
datasets are multi-gigabyte downloads unavailable offline, so
:mod:`repro.data.realworld` generates *surrogates*: clustered feature-like
data with each original's dimensionality and value range, scaled down in
cardinality (see DESIGN.md for the substitution argument).  Epsilon values
are re-calibrated per surrogate to the paper's selectivity targets
(S in {64, 128, 256}) by :mod:`repro.core.selectivity`, which is exactly
how the paper standardizes across datasets.

:mod:`repro.data.source` adds block-addressable *dataset sources* (in-memory,
memory-mapped ``.npy``, chunked ``.npy`` directories) -- the storage layer of
the out-of-core streaming executor -- and :mod:`repro.data.synthetic` the
``fine_grid_dataset`` workload the batched candidate executor targets.
"""

from repro.data.realworld import DATASETS, DatasetSpec, load_surrogate
from repro.data.source import (
    ArraySource,
    ChunkedNpySource,
    DatasetSource,
    MmapNpySource,
    as_source,
    write_chunked_npy,
)
from repro.data.synthetic import (
    SYNTH_DIMS,
    SYNTH_SIZES,
    fine_grid_dataset,
    synth_dataset,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "load_surrogate",
    "SYNTH_DIMS",
    "SYNTH_SIZES",
    "synth_dataset",
    "fine_grid_dataset",
    "DatasetSource",
    "ArraySource",
    "MmapNpySource",
    "ChunkedNpySource",
    "write_chunked_npy",
    "as_source",
]
