"""Surrogates for the paper's real-world datasets (Table 4, top).

The originals are standard similarity-search benchmarks:

=========  ==========  =====  ==========================================
Dataset    |D|         d      Nature
=========  ==========  =====  ==========================================
Sift10M    10,000,000  128    SIFT descriptors, uint8-valued 0..255
Tiny5M      5,000,000  384    Tiny-Images GIST, small positive floats
Cifar60K       60,000  512    CIFAR GIST descriptors
Gist1M      1,000,000  960    GIST descriptors
=========  ==========  =====  ==========================================

They are unavailable offline, so we generate clustered surrogates that
preserve what the experiments actually exercise:

* the **dimensionality** (drives every kernel's tiling and capacity logic),
* the **value range** (drives FP16 quantization error -- Sift's 0..255
  integers stress the FP16 mantissa far more than Gist's ~0.1 floats,
  which is why Sift and Cifar bracket the paper's accuracy results),
* **local clustering** (drives index pruning effectiveness and makes the
  selectivity-epsilon relationship realistic).

Cardinalities are scaled down to keep a pure-NumPy functional join
tractable; every experiment recalibrates epsilon to the paper's selectivity
targets, so the *relative* behaviour across methods is preserved (DESIGN.md
Section 2 documents this substitution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class DatasetSpec:
    """Descriptor tying a paper dataset to its surrogate generator.

    Attributes
    ----------
    name:
        Paper name (e.g. ``"Sift10M"``).
    paper_n, paper_d:
        The original cardinality/dimensionality (Table 4).
    surrogate_n:
        Scaled-down cardinality used in this reproduction.
    paper_eps:
        The paper's epsilon values for S in (64, 128, 256) -- recorded for
        reference; surrogates recalibrate their own.
    generator:
        Callable ``(n, d, seed) -> (n, d) float array``.
    """

    name: str
    paper_n: int
    paper_d: int
    surrogate_n: int
    paper_eps: tuple[float, float, float]
    generator: Callable[[int, int, int], np.ndarray]


def _clustered(
    n: int,
    d: int,
    seed: int,
    *,
    n_clusters: int,
    center_scale: float,
    noise_scale: float,
    variance_decay: float,
    offset: float = 0.0,
    clip: tuple[float, float] | None = None,
    integer: bool = False,
) -> np.ndarray:
    """Mixture-of-Gaussians feature surrogate.

    Per-dimension standard deviations decay as ``(1 + k)^-variance_decay``
    (sorted descending), giving the anisotropic variance profile real
    descriptor datasets show -- which is what makes variance-ordered
    indexing and short-circuiting effective.
    """
    rng = np.random.default_rng(seed)
    dim_scale = (1.0 + np.arange(d)) ** (-variance_decay)
    centers = rng.normal(0.0, center_scale, size=(n_clusters, d)) * dim_scale
    sizes = rng.dirichlet(np.full(n_clusters, 2.0))
    assign = rng.choice(n_clusters, size=n, p=sizes)
    pts = centers[assign] + rng.normal(0.0, noise_scale, size=(n, d)) * dim_scale
    pts = pts + offset
    if clip is not None:
        np.clip(pts, clip[0], clip[1], out=pts)
    if integer:
        pts = np.rint(pts)
    return pts.astype(np.float64)


def _sift(n: int, d: int, seed: int) -> np.ndarray:
    """SIFT-like: integer-valued gradient histograms in 0..255."""
    return _clustered(
        n, d, seed,
        n_clusters=64, center_scale=45.0, noise_scale=18.0,
        variance_decay=0.25, offset=60.0, clip=(0.0, 255.0), integer=True,
    )


def _tiny(n: int, d: int, seed: int) -> np.ndarray:
    """Tiny5M-like: small positive GIST energies."""
    return _clustered(
        n, d, seed,
        n_clusters=48, center_scale=0.055, noise_scale=0.02,
        variance_decay=0.35, offset=0.11, clip=(0.0, 1.0),
    )


def _cifar(n: int, d: int, seed: int) -> np.ndarray:
    """Cifar60K-like: GIST descriptors with moderate spread."""
    return _clustered(
        n, d, seed,
        n_clusters=40, center_scale=0.16, noise_scale=0.06,
        variance_decay=0.30, offset=0.32, clip=(0.0, 2.0),
    )


def _gist(n: int, d: int, seed: int) -> np.ndarray:
    """Gist1M-like: 960-dim GIST descriptors."""
    return _clustered(
        n, d, seed,
        n_clusters=56, center_scale=0.10, noise_scale=0.035,
        variance_decay=0.35, offset=0.20, clip=(0.0, 1.5),
    )


#: Registry keyed by paper dataset name.
DATASETS: dict[str, DatasetSpec] = {
    "Sift10M": DatasetSpec(
        "Sift10M", 10_000_000, 128, 20_000, (122.5, 136.5, 152.5), _sift
    ),
    "Tiny5M": DatasetSpec(
        "Tiny5M", 5_000_000, 384, 10_000, (0.1831, 0.2045, 0.2275), _tiny
    ),
    "Cifar60K": DatasetSpec(
        "Cifar60K", 60_000, 512, 6_000, (0.6289, 0.6591, 0.6914), _cifar
    ),
    "Gist1M": DatasetSpec(
        "Gist1M", 1_000_000, 960, 6_000, (0.4736, 0.5292, 0.5937), _gist
    ),
}


def load_surrogate(
    name: str, *, n: int | None = None, seed: int = 7
) -> tuple[np.ndarray, DatasetSpec]:
    """Generate the surrogate for a paper dataset.

    Parameters
    ----------
    name:
        One of ``DATASETS``'s keys.
    n:
        Override the surrogate cardinality (e.g. smaller for quick tests).
    seed:
        Generation seed.

    Returns
    -------
    (data, spec):
        The ``(n, d)`` float64 array and the dataset descriptor.
    """
    spec = DATASETS[name]
    size = spec.surrogate_n if n is None else int(n)
    data = spec.generator(size, spec.paper_d, seed)
    return data, spec
