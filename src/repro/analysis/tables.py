"""ASCII rendering of the paper's tables and figures, plus static tables.

The benchmark harness prints every reproduced artifact in a layout
comparable with the paper: matrices as aligned grids (Figure 8's heatmap),
series as columns (Figure 9), and the static configuration tables (1-3)
directly from the package's data structures so documentation cannot drift
from the code.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render rows as an aligned ASCII table."""
    str_rows = [[str(c) for c in row] for row in rows]
    all_rows = [list(headers)] + str_rows
    widths = [
        max(len(r[c]) for r in all_rows) for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(all_rows):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_heatmap(
    matrix: np.ndarray,
    row_labels: Sequence[object],
    col_labels: Sequence[object],
    *,
    title: str = "",
    fmt: str = "{:.0f}",
    corner: str = "",
) -> str:
    """Render a 2-D value grid (Figure 8 style) as ASCII."""
    matrix = np.asarray(matrix)
    headers = [corner] + [str(c) for c in col_labels]
    rows = [
        [str(rl)] + [fmt.format(v) for v in matrix[i]]
        for i, rl in enumerate(row_labels)
    ]
    return format_table(headers, rows, title=title)


def ascii_histogram(
    counts: np.ndarray,
    edges: np.ndarray,
    *,
    width: int = 50,
    title: str = "",
    max_rows: int = 31,
) -> str:
    """Render a histogram (Figure 11 style) with proportional bars."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size > max_rows:
        # Re-bin to at most max_rows for terminal friendliness.
        factor = int(np.ceil(counts.size / max_rows))
        pad = (-counts.size) % factor
        counts = np.concatenate([counts, np.zeros(pad)])
        counts = counts.reshape(-1, factor).sum(axis=1)
        edges = edges[:: factor]
        if edges.size < counts.size + 1:
            edges = np.append(edges, edges[-1])
    peak = counts.max() or 1.0
    lines = [title] if title else []
    for i, c in enumerate(counts):
        lo = edges[i]
        bar = "#" * int(round(width * c / peak))
        lines.append(f"{lo:+.2e} | {bar} {int(c)}")
    return "\n".join(lines)


def mma_shape_table() -> str:
    """Paper Table 1: FP16-32 matrix shapes by API."""
    from repro.gpusim.fragments import SUPPORTED_SHAPES

    rows = [
        (
            s.label + (" (Used by FaSTED)" if (s.m, s.n, s.k) == (16, 8, 16) else ""),
            "yes" if s.wmma_api else "",
            "yes" if s.ptx_mma else "",
        )
        for s in SUPPORTED_SHAPES
    ]
    return format_table(
        ("Size (m-n-k)", "WMMA API", "PTX mma"),
        rows,
        title="Table 1: FP16-32 matrix sizes by API",
    )


def optimized_parameters_table() -> str:
    """Paper Table 2: FaSTED's optimized configuration."""
    from repro.kernels.fasted import FastedConfig
    from repro.gpusim.spec import DEFAULT_SPEC

    cfg = FastedConfig()
    rows = [
        ("Block tile dispatch shape", f"{cfg.dispatch_shape}x{cfg.dispatch_shape} blocks"),
        (
            "Block tile iteration size",
            f"{cfg.block_points}x{cfg.block_points}x{cfg.block_k}",
        ),
        (
            "Number of blocks in grid",
            f"2x # of SMs ({cfg.blocks_per_sm * DEFAULT_SPEC.sm_count} total)",
        ),
        (
            "Warp tile iteration size",
            f"{cfg.warp_tile_m}x{cfg.warp_tile_n}x{cfg.mma_k}",
        ),
        ("Warps per block", str(cfg.warps_per_block)),
        ("Pipeline depth", str(cfg.pipeline_depth)),
    ]
    return format_table(
        ("Parameter", "Optimized Value"),
        rows,
        title="Table 2: Summary of optimized parameters",
    )


def implementation_matrix() -> list[tuple[str, str, str, bool, bool]]:
    """Paper Table 3 rows: (name, cores, precision, brute, indexed)."""
    return [
        ("FaSTED", "Tensor", "FP16-32", True, False),
        ("TED-Join-Brute", "Tensor", "FP64", True, False),
        ("TED-Join-Index", "Tensor", "FP64", False, True),
        ("GDS-Join", "CUDA", "FP32", False, True),
        ("MiSTIC", "CUDA", "FP32", False, True),
    ]


def implementation_table() -> str:
    """Paper Table 3 rendered."""
    rows = [
        (name, cores, prec, "yes" if brute else "", "yes" if idx else "")
        for name, cores, prec, brute, idx in implementation_matrix()
    ]
    return format_table(
        ("Implementation", "GPU Core", "Precision", "Scenario 1 (Brute)", "Scenario 2 (Index)"),
        rows,
        title="Table 3: Comparison of implementation properties",
    )
