"""Experiment drivers: one function per paper table/figure.

Each driver reproduces the workload of one artifact of the paper's
evaluation (Section 4) and returns plain dataclasses; the benchmark
harness (``benchmarks/``) times them and prints the paper-shaped output
next to the paper's reported values.  DESIGN.md Section 4 is the index.

Experiments come in two kinds:

* **Model-driven** (Figures 8-9, Tables 5-6): pure timing-model sweeps --
  instantaneous, dataset-free, usable at the paper's full scales.
* **Data-driven** (Table 4, Figure 10, Tables 7-8, Figure 11): functional
  joins on the real-world surrogates; cardinality is configurable so the
  benchmarks stay minutes-scale (see ``DEFAULT_FIG10_SIZES``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.accuracy import DistanceErrorStats, distance_error_stats, overlap_accuracy
from repro.core.results import NeighborResult
from repro.core.selectivity import epsilon_for_selectivity
from repro.data.realworld import DATASETS, load_surrogate
from repro.data.synthetic import SYNTH_DIMS, SYNTH_SIZES
from repro.gpusim.profiler import ProfileReport, oom_report, report_from_timing
from repro.gpusim.spec import DEFAULT_SPEC, GpuSpec
from repro.kernels.fasted import FastedConfig, FastedKernel, FastedOptimizations
from repro.kernels.gdsjoin import GdsJoinKernel
from repro.kernels.mistic import MisticKernel
from repro.kernels.tedjoin import TedJoinKernel, wmma_conflict_degree

#: Paper selectivity levels (Section 4.1.3).
SELECTIVITIES = (64, 128, 256)

#: Surrogate cardinalities for the data-driven experiments, chosen so the
#: full Figure-10/Table-7 sweep completes in minutes of NumPy time.
DEFAULT_FIG10_SIZES = {
    "Sift10M": 8000,
    "Tiny5M": 6000,
    "Cifar60K": 6000,
    "Gist1M": 4000,
}


# ---------------------------------------------------------------------------
# Figure 8: throughput heatmap
# ---------------------------------------------------------------------------


@dataclass
class Fig8Result:
    sizes: tuple[int, ...]
    dims: tuple[int, ...]
    tflops: np.ndarray  # (len(sizes), len(dims))


def run_fig8(
    sizes: tuple[int, ...] = SYNTH_SIZES,
    dims: tuple[int, ...] = SYNTH_DIMS,
    spec: GpuSpec = DEFAULT_SPEC,
) -> Fig8Result:
    """Derived TFLOPS of FaSTED over the (|D|, d) Synth grid."""
    kernel = FastedKernel(spec)
    out = np.zeros((len(sizes), len(dims)))
    for i, n in enumerate(sizes):
        for j, d in enumerate(dims):
            out[i, j] = kernel.derived_tflops(n, d)
    return Fig8Result(tuple(sizes), tuple(dims), out)


# ---------------------------------------------------------------------------
# Table 5: leave-one-out ablation
# ---------------------------------------------------------------------------

#: Paper Table 5 reference values (derived TFLOPS).
PAPER_TABLE5 = {
    "block_tile_ordering": 133.1,
    "block_tile": 95.8,
    "memcpy_async": 48.6,
    "multistage_pipeline": 145.0,
    "sm_block_residency": 110.8,
    "warp_tile": 38.0,
    "swizzle": 120.8,
    "smem_alignment": 120.7,
}

PAPER_TABLE5_BASELINE = 154.0


@dataclass
class AblationRow:
    disabled: str
    tflops: float
    paper_tflops: float


@dataclass
class AblationResult:
    baseline_tflops: float
    paper_baseline: float
    rows: list[AblationRow]


def run_table5(
    n: int = 100_000, d: int = 4096, spec: GpuSpec = DEFAULT_SPEC
) -> AblationResult:
    """Leave-one-out optimization study on Synth |D|=1e5, d=4096."""
    base = FastedKernel(spec).derived_tflops(n, d)
    rows = []
    for name, opts in FastedOptimizations.leave_one_out().items():
        k = FastedKernel(spec, FastedConfig(opts=opts))
        rows.append(AblationRow(name, k.derived_tflops(n, d), PAPER_TABLE5[name]))
    return AblationResult(base, PAPER_TABLE5_BASELINE, rows)


# ---------------------------------------------------------------------------
# Figure 9: brute-force tensor-core throughput vs dimensionality
# ---------------------------------------------------------------------------


@dataclass
class Fig9Result:
    dims: tuple[int, ...]
    fasted_tflops: list[float]
    tedjoin_tflops: list[float | None]  # None = OOM
    fp16_peak: float
    fp64_peak: float


def run_fig9(
    n: int = 100_000,
    dims: tuple[int, ...] = SYNTH_DIMS,
    spec: GpuSpec = DEFAULT_SPEC,
) -> Fig9Result:
    """FaSTED vs TED-Join-Brute derived TFLOPS as a function of d."""
    fasted = FastedKernel(spec)
    ted = TedJoinKernel(spec, variant="brute")
    f_vals = [fasted.derived_tflops(n, d) for d in dims]
    t_vals = [
        ted.derived_tflops(n, d) if ted.supports(d) else None for d in dims
    ]
    return Fig9Result(
        tuple(dims),
        f_vals,
        t_vals,
        spec.fp16_tc_flops / 1e12,
        spec.fp64_tc_flops / 1e12,
    )


# ---------------------------------------------------------------------------
# Table 6: profiler counters
# ---------------------------------------------------------------------------


def run_table6(
    n: int = 100_000,
    dims: tuple[int, ...] = (128, 256, 4096),
    spec: GpuSpec = DEFAULT_SPEC,
) -> list[ProfileReport]:
    """Nsight-style counters for FaSTED and TED-Join-Brute (paper Table 6)."""
    reports = []
    fasted = FastedKernel(spec)
    for d in dims:
        reports.append(report_from_timing(f"FaSTED d={d}", fasted.timing(n, d)))
    ted = TedJoinKernel(spec, variant="brute")
    for d in dims:
        if not ted.supports(d):
            reports.append(oom_report(f"TED-Join d={d}"))
            continue
        eff = ted.efficiency(d)
        degree = wmma_conflict_degree(d)
        achieved = eff * spec.fp64_tc_flops
        # WMMA fragment traffic: ~0.5 B/FLOP of A/B loads inflated by the
        # conflict replay degree.
        smem_util = min(1.0, achieved * 0.5 * degree / spec.smem_bandwidth)
        dram_util = 2.0 * n * d * 8 * (achieved / (2.0 * n * n * d)) / spec.dram_bandwidth
        reports.append(
            ProfileReport(
                label=f"TED-Join d={d}",
                dram_throughput_pct=100 * dram_util,
                smem_throughput_pct=100 * smem_util,
                bank_conflict_pct=100 * (1 - 1 / degree),
                l2_hit_rate_pct=98.9,
                tc_pipe_utilization_pct=100 * eff,
                clock_ghz=spec.boost_clock_hz / 1e9 * 0.995,
            )
        )
    return reports


# ---------------------------------------------------------------------------
# Table 4 + Figure 10 + Tables 7-8 + Figure 11: real-dataset experiments
# ---------------------------------------------------------------------------


@dataclass
class MethodOutcome:
    """One method's end-to-end modeled time (and functional result size)."""

    name: str
    total_s: float | None  # None = OOM / unsupported
    kernel_s: float | None = None
    index_s: float | None = None


@dataclass
class Fig10Row:
    dataset: str
    selectivity: int
    eps: float
    n_points: int
    dims: int
    outcomes: list[MethodOutcome] = field(default_factory=list)

    def speedup_over(self, method: str) -> float | None:
        """FaSTED's speedup over ``method`` (None when unsupported)."""
        by = {o.name: o for o in self.outcomes}
        fasted = by["FaSTED"]
        other = by.get(method)
        if other is None or other.total_s is None or fasted.total_s is None:
            return None
        return other.total_s / fasted.total_s


@dataclass
class DatasetAccuracy:
    dataset: str
    selectivity: int
    overlap: float
    error_stats: DistanceErrorStats | None


@dataclass
class RealDataOutcome:
    """Everything the data-driven experiments produce for one dataset."""

    dataset: str
    n_points: int
    dims: int
    eps_by_s: dict[int, float]
    fig10_rows: list[Fig10Row]
    accuracy: list[DatasetAccuracy]
    fasted_results: dict[int, NeighborResult]


def run_real_dataset(
    name: str,
    *,
    selectivities: tuple[int, ...] = SELECTIVITIES,
    n: int | None = None,
    seed: int = 7,
    spec: GpuSpec = DEFAULT_SPEC,
    with_accuracy: bool = True,
    with_error_stats: bool = False,
) -> RealDataOutcome:
    """Run the Figure-10 / Table-7 / Table-8 workload on one dataset.

    The functional joins are computed once per (dataset, selectivity) and
    shared by the response-time models and the accuracy metrics.
    """
    size = n if n is not None else DEFAULT_FIG10_SIZES.get(
        name, DATASETS[name].surrogate_n
    )
    data, spec_ds = load_surrogate(name, n=size, seed=seed)
    d = spec_ds.paper_d

    fasted = FastedKernel(spec)
    gds = GdsJoinKernel(spec, precision="fp32")
    gds64 = GdsJoinKernel(spec, precision="fp64")
    mistic = MisticKernel(spec)
    ted = TedJoinKernel(spec, variant="index")

    eps_by_s: dict[int, float] = {}
    rows: list[Fig10Row] = []
    accuracy: list[DatasetAccuracy] = []
    fasted_results: dict[int, NeighborResult] = {}

    for s_target in selectivities:
        eps = epsilon_for_selectivity(data, s_target, seed=seed)
        eps_by_s[s_target] = eps
        f_res = fasted.self_join(data, eps, store_distances=with_accuracy)
        fasted_results[s_target] = f_res
        n_pairs = int(f_res.pairs_i.size)

        g_out = gds.self_join(data, eps, store_distances=False)
        m_out = mistic.self_join(data, eps, store_distances=False)

        row = Fig10Row(name, s_target, eps, size, d)
        f_rt = fasted.response_time(size, d, n_pairs)
        row.outcomes.append(
            MethodOutcome("FaSTED", f_rt.total_s, f_rt.kernel_s, f_rt.index_build_s)
        )
        m_rt = mistic.response_time(
            size, d,
            total_candidates=m_out.total_candidates,
            profile=m_out.profile,
            n_result_pairs=n_pairs,
            construction_evaluations=m_out.construction_evaluations,
        )
        row.outcomes.append(
            MethodOutcome("MiSTIC", m_rt.total_s, m_rt.kernel_s, m_rt.index_build_s)
        )
        g_rt = gds.response_time(
            size, d,
            total_candidates=g_out.total_candidates,
            profile=g_out.profile,
            n_result_pairs=n_pairs,
        )
        row.outcomes.append(
            MethodOutcome("GDS-Join", g_rt.total_s, g_rt.kernel_s, g_rt.index_build_s)
        )
        if ted.supports(d):
            # Candidate work mirrors GDS's grid with 8x8 WMMA tile padding.
            t_rt = ted.response_time(
                size, d,
                total_pair_work=g_out.total_candidates * 1.3,
                n_result_pairs=n_pairs,
            )
            row.outcomes.append(
                MethodOutcome(
                    "TED-Join-Index", t_rt.total_s, t_rt.kernel_s, t_rt.index_build_s
                )
            )
        else:
            row.outcomes.append(MethodOutcome("TED-Join-Index", None))
        rows.append(row)

        if with_accuracy:
            truth = gds64.self_join(data, eps, store_distances=True).result
            ov = overlap_accuracy(f_res, truth)
            stats = (
                distance_error_stats(f_res, truth) if with_error_stats else None
            )
            accuracy.append(DatasetAccuracy(name, s_target, ov, stats))

    return RealDataOutcome(
        dataset=name,
        n_points=size,
        dims=d,
        eps_by_s=eps_by_s,
        fig10_rows=rows,
        accuracy=accuracy,
        fasted_results=fasted_results,
    )
