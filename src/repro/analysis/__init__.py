"""Experiment drivers and report rendering for the paper's evaluation."""

from repro.analysis.experiments import (
    DEFAULT_FIG10_SIZES,
    SELECTIVITIES,
    run_fig8,
    run_fig9,
    run_real_dataset,
    run_table5,
    run_table6,
)
from repro.analysis.tables import (
    ascii_histogram,
    format_heatmap,
    format_table,
    implementation_matrix,
    implementation_table,
    mma_shape_table,
    optimized_parameters_table,
)

__all__ = [
    "DEFAULT_FIG10_SIZES",
    "SELECTIVITIES",
    "run_fig8",
    "run_fig9",
    "run_real_dataset",
    "run_table5",
    "run_table6",
    "ascii_histogram",
    "format_heatmap",
    "format_table",
    "implementation_matrix",
    "implementation_table",
    "mma_shape_table",
    "optimized_parameters_table",
]
