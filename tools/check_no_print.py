#!/usr/bin/env python
"""Lint: no bare ``print()`` in the serving path.

The service layer emits *structured* JSON logs (``repro.log``) so that
operators can grep/parse server output by field; a stray ``print()``
in that path would interleave unstructured text into the same stream
and silently break log consumers.  This checker walks the AST of every
module under ``src/repro/service/`` plus ``src/repro/trace.py`` and
``src/repro/log.py`` and fails on any call to the ``print`` builtin.

The CLI (``src/repro/cli.py``) is exempt by construction -- it is the
human-facing surface and *should* print -- as is everything outside the
serving path.  ``functools.partial(print, ...)``-style indirection is
out of scope; the lint targets the easy-to-write regression, not
adversarial obfuscation.

Used by the CI docs job::

    python tools/check_no_print.py

Exit status 0 when clean, 1 otherwise (each offending call is reported
with its file and line).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Files and directories (recursive) covered by the lint.
LINTED = (
    "src/repro/service",
    "src/repro/trace.py",
    "src/repro/log.py",
)


def linted_files() -> list[Path]:
    files: list[Path] = []
    for entry in LINTED:
        path = REPO_ROOT / entry
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.exists():
            files.append(path)
    return files


def find_prints(source: str, filename: str) -> list[tuple[int, str]]:
    """``(line, snippet)`` for every bare ``print(...)`` call."""
    tree = ast.parse(source, filename=filename)
    lines = source.splitlines()
    hits: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            snippet = (
                lines[node.lineno - 1].strip()
                if 0 < node.lineno <= len(lines)
                else ""
            )
            hits.append((node.lineno, snippet))
    return hits


def main(argv: list[str]) -> int:
    targets = [Path(a) for a in argv] if argv else linted_files()
    problems = []
    for path in targets:
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            problems.append(f"{path}: unreadable: {exc}")
            continue
        try:
            hits = find_prints(source, str(path))
        except SyntaxError as exc:
            problems.append(f"{path}: failed to parse: {exc}")
            continue
        rel = path.resolve()
        try:
            rel = rel.relative_to(REPO_ROOT)
        except ValueError:
            pass
        for lineno, snippet in hits:
            problems.append(
                f"{rel}:{lineno}: bare print() in the serving path "
                f"(use repro.log): {snippet}"
            )
    if problems:
        for p in problems:
            sys.stderr.write(p + "\n")
        sys.stderr.write(
            f"check_no_print: {len(problems)} problem(s) found\n"
        )
        return 1
    n = len(targets)
    sys.stderr.write(f"check_no_print: OK ({n} files clean)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
