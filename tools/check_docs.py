#!/usr/bin/env python
"""Documentation reference checker: fail on dangling file paths.

Scans ``README.md`` and ``docs/*.md`` (or the files given on the command
line) for references to repository files and verifies each one exists:

* inline-code tokens that look like repository paths -- contain a ``/``
  and only path characters (so prose, shell commands, and Python
  expressions are never misread as paths);
* relative markdown link targets ``[text](path)`` (external ``http(s)``
  links and ``#`` anchors are skipped).

Paths are resolved against the repository root first, then against the
referencing document's directory.  A trailing ``/`` means the reference
must be a directory.

Used by the CI docs job::

    python tools/check_docs.py

Exit status 0 when every reference resolves, 1 otherwise (each dangling
reference is reported with its file and line).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline code span: `...` (no backticks inside).
_CODE_RE = re.compile(r"`([^`\n]+)`")

#: Markdown link target: [text](target).
_LINK_RE = re.compile(r"\[[^\]\n]*\]\(([^)\s]+)\)")

#: A code token is treated as a repo path only when it is purely
#: path-shaped AND contains a directory separator; bare file names
#: (`data.npy`), commands, and dotted Python names are skipped.
_PATH_TOKEN_RE = re.compile(r"^[A-Za-z0-9_.\-][A-Za-z0-9_.\-/]*/[A-Za-z0-9_.\-/]*$")


def default_docs() -> list[Path]:
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [d for d in docs if d.exists()]


def iter_references(text: str):
    """Yield ``(line_number, reference)`` for every checkable reference."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _CODE_RE.finditer(line):
            token = match.group(1).strip()
            if _PATH_TOKEN_RE.match(token):
                yield lineno, token
        for match in _LINK_RE.finditer(line):
            target = match.group(1).split("#", 1)[0].strip()
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            yield lineno, target


def check_file(doc: Path) -> list[str]:
    """Return error strings for the dangling references of one document."""
    errors = []
    for lineno, ref in iter_references(doc.read_text()):
        want_dir = ref.endswith("/")
        candidates = [REPO_ROOT / ref, doc.parent / ref]
        ok = any(
            c.is_dir() if want_dir else c.exists() for c in candidates
        )
        if not ok:
            try:
                shown = doc.relative_to(REPO_ROOT)
            except ValueError:  # document outside the repository
                shown = doc
            errors.append(f"{shown}:{lineno}: dangling reference `{ref}`")
    return errors


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    docs = [Path(a).resolve() for a in args] if args else default_docs()
    errors: list[str] = []
    checked = 0
    for doc in docs:
        if not doc.exists():
            errors.append(f"{doc}: document not found")
            continue
        checked += 1
        errors.extend(check_file(doc))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {checked} document(s): "
          + ("OK" if not errors else f"{len(errors)} dangling reference(s)"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
