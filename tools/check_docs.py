#!/usr/bin/env python
"""Documentation reference checker: fail on dangling paths and CLI drift.

Scans ``README.md`` and ``docs/*.md`` (or the files given on the command
line) for references to repository files and verifies each one exists:

* inline-code tokens that look like repository paths -- contain a ``/``
  and only path characters (so prose, shell commands, and Python
  expressions are never misread as paths);
* relative markdown link targets ``[text](path)`` (external ``http(s)``
  links and ``#`` anchors are skipped).

Paths are resolved against the repository root first, then against the
referencing document's directory.  A trailing ``/`` means the reference
must be a directory.

It also verifies every documented **CLI invocation** against the live
argparse parser: each ``python -m repro <command> ...`` code span must
name a real subcommand and use only flags that subcommand actually
defines, so a renamed/removed flag in ``src/repro/cli.py`` fails the docs
job instead of silently stranding the README's flag table.

Used by the CI docs job::

    python tools/check_docs.py

Exit status 0 when every reference resolves, 1 otherwise (each dangling
reference is reported with its file and line).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline code span: `...` (no backticks inside).
_CODE_RE = re.compile(r"`([^`\n]+)`")

#: Markdown link target: [text](target).
_LINK_RE = re.compile(r"\[[^\]\n]*\]\(([^)\s]+)\)")

#: A code token is treated as a repo path only when it is purely
#: path-shaped AND contains a directory separator; bare file names
#: (`data.npy`), commands, and dotted Python names are skipped.
_PATH_TOKEN_RE = re.compile(r"^[A-Za-z0-9_.\-][A-Za-z0-9_.\-/]*/[A-Za-z0-9_.\-/]*$")


def default_docs() -> list[Path]:
    docs = [REPO_ROOT / "README.md"]
    docs.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [d for d in docs if d.exists()]


def iter_references(text: str):
    """Yield ``(line_number, reference)`` for every checkable reference."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _CODE_RE.finditer(line):
            token = match.group(1).strip()
            if _PATH_TOKEN_RE.match(token):
                yield lineno, token
        for match in _LINK_RE.finditer(line):
            target = match.group(1).split("#", 1)[0].strip()
            if not target or "://" in target or target.startswith("mailto:"):
                continue
            yield lineno, target


#: CLI invocation inside a code span or console block:
#: ``python -m repro <command> [args...]``.
_CLI_RE = re.compile(r"python -m repro\s+([^`\n]*)")


def _subparsers_action(parser):
    return next(
        (
            a for a in parser._actions
            if a.__class__.__name__ == "_SubParsersAction"
        ),
        None,
    )


def _load_cli_commands() -> dict[str, set[str]]:
    """Map each live CLI subcommand to its accepted option strings.

    Imports ``repro.cli`` with ``src/`` on the path; the argparse parser
    itself is the source of truth, so documentation can only drift from
    flags that really exist.  Nested subcommands (``index build``) appear
    as space-joined compound keys next to their parent.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.cli import build_parser
    finally:
        sys.path.pop(0)
    commands: dict[str, set[str]] = {}
    sub = _subparsers_action(build_parser())
    for name, parser in sub.choices.items():
        commands[name] = set(parser._option_string_actions)
        nested = _subparsers_action(parser)
        if nested is not None:
            for sub_name, sub_parser in nested.choices.items():
                commands[f"{name} {sub_name}"] = set(
                    sub_parser._option_string_actions
                ) | set(parser._option_string_actions)
    return commands


def iter_cli_invocations(text: str, nested: tuple[str, ...] = ()):
    """Yield ``(line_number, command, flags)`` for documented CLI calls.

    Placeholder spans (``python -m repro <experiment>``) and bare mentions
    without a concrete command are skipped.  ``nested`` names commands
    with sub-subcommands: their following bare token joins the command
    (``index build``), so the flag check runs against the right nested
    parser.
    """
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in _CLI_RE.finditer(line):
            tokens = match.group(1).replace("\\", " ").split()
            command = None
            flags: list[str] = []
            for tok in tokens:
                tok = tok.rstrip("`|,.;:)")
                if "<" in tok or ">" in tok:
                    continue
                if tok.startswith("--"):
                    flags.append(tok.split("=", 1)[0])
                elif not tok.startswith("-"):
                    if command is None:
                        command = tok
                    elif command in nested:
                        command = f"{command} {tok}"
            if command is not None:
                yield lineno, command, flags


def check_cli_invocations(doc: Path, commands: dict[str, set[str]]) -> list[str]:
    """Verify a document's CLI calls against the live parser."""
    errors = []
    try:
        shown = doc.relative_to(REPO_ROOT)
    except ValueError:
        shown = doc
    nested = tuple({k.split()[0] for k in commands if " " in k})
    for lineno, command, flags in iter_cli_invocations(doc.read_text(), nested):
        if command not in commands:
            errors.append(
                f"{shown}:{lineno}: documented CLI command "
                f"`python -m repro {command}` does not exist"
            )
            continue
        for flag in flags:
            if flag not in commands[command]:
                errors.append(
                    f"{shown}:{lineno}: `python -m repro {command}` has no "
                    f"`{flag}` flag"
                )
    return errors


def check_file(doc: Path) -> list[str]:
    """Return error strings for the dangling references of one document."""
    errors = []
    for lineno, ref in iter_references(doc.read_text()):
        want_dir = ref.endswith("/")
        candidates = [REPO_ROOT / ref, doc.parent / ref]
        ok = any(
            c.is_dir() if want_dir else c.exists() for c in candidates
        )
        if not ok:
            try:
                shown = doc.relative_to(REPO_ROOT)
            except ValueError:  # document outside the repository
                shown = doc
            errors.append(f"{shown}:{lineno}: dangling reference `{ref}`")
    return errors


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    docs = [Path(a).resolve() for a in args] if args else default_docs()
    try:
        commands = _load_cli_commands()
    except Exception as exc:  # missing numpy, broken parser, ...
        commands = None
        print(f"warning: CLI flag check skipped ({exc})", file=sys.stderr)
    errors: list[str] = []
    checked = 0
    for doc in docs:
        if not doc.exists():
            errors.append(f"{doc}: document not found")
            continue
        checked += 1
        errors.extend(check_file(doc))
        if commands is not None:
            errors.extend(check_cli_invocations(doc, commands))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"checked {checked} document(s): "
          + ("OK" if not errors else f"{len(errors)} problem(s)"))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
